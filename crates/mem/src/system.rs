//! The coherent multicore memory system.
//!
//! Private L1 + L2 per core, shared LLC with an in-cache directory, MESI
//! protocol. ReCon [`RevealMask`]s are piggybacked on every coherence
//! transaction exactly per §5.3 of the paper:
//!
//! * a line fetched from memory is all-concealed;
//! * an S-copy evicted from a private cache **ORs** its mask into the
//!   directory copy (reader evictions only add reveals — concealing
//!   requires write permission — so OR never resurrects stale reveals);
//! * a Modified/Exclusive owner holds the *only coherent copy*: on
//!   downgrade or writeback its mask **overwrites** the directory copy
//!   (the stale directory copy may show revealed words the owner has
//!   since concealed);
//! * an invalidated reader's mask is **lost** (the paper's footnote 1);
//! * the requester of a GetS/GetM receives the current coherent mask with
//!   the data.
//!
//! The model is timing-directed: arrays hold tags, MESI state, and masks;
//! architectural data lives in the functional memory owned by the
//! simulator. Each access atomically applies the protocol transitions and
//! returns its latency.

use recon::{line_of, word_index, ReconConfig, RevealMask, WORDS_PER_LINE, WORD_BYTES};
use recon_isa::hash::FxHashMap;
use recon_isa::snap::{SnapError, SnapReader, SnapWriter};

use crate::array::CacheArray;
use crate::config::MemConfig;
use crate::mesi::{DirState, Mesi};
use crate::observe::{LineState, MemEvent, MemEventKind, MemSnapshot};
use crate::stats::MemStats;

/// Which level served an access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ServedBy {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared LLC hit (no private holder elsewhere).
    Llc,
    /// Forwarded from a remote private cache that owned the line.
    RemoteCache,
    /// Fetched from memory.
    Memory,
}

/// Result of a load access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReadOutcome {
    /// Roundtrip latency in cycles.
    pub latency: u32,
    /// Whether the accessed word was marked *revealed* at the level that
    /// served the access — if so, the core may lift speculative defenses
    /// for the loaded value (§5.4).
    pub revealed: bool,
    /// Which level served the access.
    pub served_by: ServedBy,
}

/// Result of a performed store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WriteOutcome {
    /// Roundtrip latency in cycles.
    pub latency: u32,
}

/// Private two-level hierarchy of one core.
#[derive(Clone, Debug)]
struct Private {
    l1: CacheArray,
    l2: CacheArray,
}

/// The multicore memory system.
///
/// ```
/// use recon_mem::{MemorySystem, MemConfig};
/// use recon::ReconConfig;
///
/// let mut mem = MemorySystem::new(2, MemConfig::scaled(), ReconConfig::default());
/// let first = mem.read(0, 0x1000);
/// assert!(!first.revealed); // fresh lines are concealed
/// mem.reveal(0, 0x1000);    // a committed load pair revealed the word
/// assert!(mem.read(0, 0x1000).revealed);
/// ```
#[derive(Clone, Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    recon: ReconConfig,
    cores: Vec<Private>,
    llc: CacheArray,
    /// Directory entries, keyed by line address. Probed on every
    /// private-cache miss and every eviction notification — an
    /// FxHash-keyed map, not SipHash, for the same reason as the
    /// functional memory's page table.
    dir: FxHashMap<u64, DirState>,
    stats: MemStats,
    /// Cycle of the in-flight tick, stamped onto logged transactions.
    now: u64,
    /// Whether transactions are being logged (off by default).
    record: bool,
    events: Vec<MemEvent>,
    sound: Option<Soundness>,
}

/// Reveal-soundness oracle (§5.2/§5.3 monotonicity): a word's reveal
/// bit may be set only by a committed load-pair reveal, and must be
/// cleared by committed stores; losing a legitimate reveal (eviction,
/// invalidation) is always safe and never flagged.
#[derive(Clone, Debug, Default)]
struct Soundness {
    /// Word addresses with a currently-legitimate reveal (the crate's
    /// hash module exposes no set type, so a unit-valued map serves).
    legit: FxHashMap<u64, ()>,
    violations: Vec<String>,
}

impl MemorySystem {
    /// Creates a system with `num_cores` private hierarchies.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is 0 or greater than 64.
    #[must_use]
    pub fn new(num_cores: usize, cfg: MemConfig, recon: ReconConfig) -> Self {
        assert!((1..=64).contains(&num_cores), "1..=64 cores supported");
        let cores = (0..num_cores)
            .map(|_| Private {
                l1: CacheArray::new(cfg.l1),
                l2: CacheArray::new(cfg.l2),
            })
            .collect();
        MemorySystem {
            cfg,
            recon,
            cores,
            llc: CacheArray::new(cfg.llc),
            dir: FxHashMap::default(),
            stats: MemStats::default(),
            now: 0,
            record: false,
            events: Vec::new(),
            sound: None,
        }
    }

    // ------------------------------------------------------------------
    // Observation hooks (see the `observe` module)
    // ------------------------------------------------------------------

    /// Stamps the current cycle onto subsequently logged transactions
    /// (called once per tick by the simulator).
    pub fn set_now(&mut self, cycle: u64) {
        self.now = cycle;
    }

    /// Enables or disables the cycle-stamped transaction log.
    pub fn record_transactions(&mut self, on: bool) {
        self.record = on;
    }

    /// Drains the transaction log.
    pub fn take_transactions(&mut self) -> Vec<MemEvent> {
        std::mem::take(&mut self.events)
    }

    /// Enables the reveal-soundness invariant checker. Violations are
    /// collected, not panicked, so a harness can report them all.
    pub fn enable_soundness_checks(&mut self) {
        self.sound = Some(Soundness::default());
    }

    /// Violations collected so far (empty when the checker is off).
    #[must_use]
    pub fn soundness_violations(&self) -> &[String] {
        self.sound.as_ref().map_or(&[], |s| &s.violations)
    }

    /// Final sweep of the invariant: every reveal bit anywhere in the
    /// hierarchy must correspond to a word legitimately revealed by a
    /// committed load pair (and not since concealed by a store).
    pub fn soundness_sweep(&mut self) {
        let Some(mut sound) = self.sound.take() else {
            return;
        };
        let mut sweep = |name: String, arr: &CacheArray| {
            for (line, _, mask) in arr.iter_lines() {
                for wi in 0..WORDS_PER_LINE {
                    let word = line + (wi as u64) * WORD_BYTES;
                    if mask.is_revealed(wi) && !sound.legit.contains_key(&word) {
                        sound.violations.push(format!(
                            "{name}: word {word:#x} revealed without a committed load-pair reveal"
                        ));
                    }
                }
            }
        };
        for (i, p) in self.cores.iter().enumerate() {
            sweep(format!("core{i}.L1"), &p.l1);
            sweep(format!("core{i}.L2"), &p.l2);
        }
        sweep("LLC".to_string(), &self.llc);
        self.sound = Some(sound);
    }

    /// Canonical snapshot of all tags, MESI states, reveal masks, and
    /// directory entries (sorted; equal snapshots are indistinguishable
    /// to an attacker probing occupancy).
    #[must_use]
    pub fn snapshot(&self) -> MemSnapshot {
        fn snap(arr: &CacheArray) -> Vec<LineState> {
            let geom = arr.geometry();
            let mut v: Vec<LineState> = arr
                .iter_lines()
                .map(|(line, state, mask)| LineState {
                    line,
                    set: geom.slice(line).0,
                    state,
                    mask: mask.bits(),
                })
                .collect();
            v.sort_by_key(|l| l.line);
            v
        }
        let mut dir: Vec<(u64, DirState)> = self.dir.iter().map(|(&l, &d)| (l, d)).collect();
        dir.sort_by_key(|&(l, _)| l);
        MemSnapshot {
            cores: self
                .cores
                .iter()
                .map(|p| (snap(&p.l1), snap(&p.l2)))
                .collect(),
            llc: snap(&self.llc),
            dir,
        }
    }

    #[inline]
    fn emit(&mut self, kind: MemEventKind) {
        if self.record {
            self.events.push(MemEvent {
                cycle: self.now,
                kind,
            });
        }
    }

    /// Soundness check at an observation point: a core that sees a word
    /// revealed must be seeing a legitimate reveal.
    fn check_observed_reveal(&mut self, core: usize, addr: u64, revealed: bool) {
        if let Some(s) = &mut self.sound {
            let word = addr & !(WORD_BYTES - 1);
            if revealed && !s.legit.contains_key(&word) {
                s.violations.push(format!(
                    "core{core}: load of {word:#x} observed revealed without a legitimate reveal"
                ));
            }
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> MemConfig {
        self.cfg
    }

    /// The ReCon configuration this system was built with.
    #[must_use]
    pub fn recon_config(&self) -> ReconConfig {
        self.recon
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Resets statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    // ------------------------------------------------------------------
    // Checkpoint serialization
    // ------------------------------------------------------------------

    /// Serializes the full coherence + ReCon metadata state: every cache
    /// array (tags, MESI, reveal masks, LRU), the directory (sorted by
    /// line address for canonical bytes, including sharer vectors and
    /// master mask copies held in the LLC arrays), stats, and the
    /// transaction-log flag. The analysis-only `events` log and the
    /// soundness oracle are *not* captured — no run path enables them.
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"MSYS");
        w.u32(self.cores.len() as u32);
        for p in &self.cores {
            p.l1.save_snap(w);
            p.l2.save_snap(w);
        }
        self.llc.save_snap(w);
        let mut dir: Vec<(u64, DirState)> = self.dir.iter().map(|(&l, &d)| (l, d)).collect();
        dir.sort_by_key(|&(l, _)| l);
        w.u64(dir.len() as u64);
        for (line, state) in dir {
            w.u64(line);
            match state {
                DirState::Uncached => w.u8(0),
                DirState::Shared(sharers) => {
                    w.u8(1);
                    w.u64(sharers.iter().fold(0u64, |bits, c| bits | (1 << c)));
                }
                DirState::Owned { owner } => {
                    w.u8(2);
                    w.u32(owner as u32);
                }
            }
        }
        let s = self.stats;
        for v in [
            s.l1_hits,
            s.l2_hits,
            s.llc_hits,
            s.mem_fetches,
            s.stores_performed,
            s.upgrades,
            s.remote_forwards,
            s.invalidations,
            s.reveals_set,
            s.reveals_dropped,
            s.conceals,
            s.revealed_loads,
            s.mask_bits_lost_inval,
            s.mask_bits_lost_evict,
            s.mask_merges,
        ] {
            w.u64(v);
        }
        w.u64(self.now);
        w.bool(self.record);
    }

    /// Restores state serialized by [`MemorySystem::save_snap`] into
    /// this system (which must have been built with the same core count
    /// and cache configuration).
    ///
    /// # Errors
    ///
    /// Fails on a corrupt stream or a configuration mismatch (core
    /// count or cache geometry); `self` may be partially overwritten on
    /// error and must be discarded.
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_tag(b"MSYS")?;
        let num_cores = r.u32()? as usize;
        if num_cores != self.cores.len() {
            return Err(SnapError {
                what: format!(
                    "snapshot has {num_cores} cores, system has {}",
                    self.cores.len()
                ),
                offset: r.offset(),
            });
        }
        for p in &mut self.cores {
            p.l1 = CacheArray::load_snap(self.cfg.l1, r)?;
            p.l2 = CacheArray::load_snap(self.cfg.l2, r)?;
        }
        self.llc = CacheArray::load_snap(self.cfg.llc, r)?;
        let dir_len = r.u64()? as usize;
        self.dir = FxHashMap::default();
        for _ in 0..dir_len {
            let line = r.u64()?;
            let state = match r.u8()? {
                0 => DirState::Uncached,
                1 => {
                    let bits = r.u64()?;
                    DirState::Shared((0..64usize).filter(|i| bits & (1 << i) != 0).collect())
                }
                2 => DirState::Owned {
                    owner: r.u32()? as usize,
                },
                other => {
                    return Err(SnapError {
                        what: format!("invalid directory-state byte {other:#x}"),
                        offset: r.offset(),
                    })
                }
            };
            self.dir.insert(line, state);
        }
        self.stats = MemStats {
            l1_hits: r.u64()?,
            l2_hits: r.u64()?,
            llc_hits: r.u64()?,
            mem_fetches: r.u64()?,
            stores_performed: r.u64()?,
            upgrades: r.u64()?,
            remote_forwards: r.u64()?,
            invalidations: r.u64()?,
            reveals_set: r.u64()?,
            reveals_dropped: r.u64()?,
            conceals: r.u64()?,
            revealed_loads: r.u64()?,
            mask_bits_lost_inval: r.u64()?,
            mask_bits_lost_evict: r.u64()?,
            mask_merges: r.u64()?,
        };
        self.now = r.u64()?;
        self.record = r.bool()?;
        self.events.clear();
        self.sound = None;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Demand accesses
    // ------------------------------------------------------------------

    /// A demand load by `core` at `addr`. Applies all coherence
    /// transitions and returns latency plus the word's reveal status.
    pub fn read(&mut self, core: usize, addr: u64) -> ReadOutcome {
        let wi = word_index(addr);
        let out = if let Some((_, mask)) = self.cores[core].l1.touch(addr) {
            self.stats.l1_hits += 1;
            ReadOutcome {
                latency: self.cfg.lat.l1_hit,
                revealed: self.recon.enabled && mask.is_revealed(wi),
                served_by: ServedBy::L1,
            }
        } else if let Some((state, mask)) = self.cores[core].l2.touch(addr) {
            self.stats.l2_hits += 1;
            self.fill_l1(core, addr, state, mask);
            ReadOutcome {
                latency: self.cfg.lat.l2_hit,
                revealed: self.recon.enabled && mask.is_revealed(wi),
                served_by: ServedBy::L2,
            }
        } else {
            // Private miss: GetS at the directory.
            let (latency, state, mask, served_by) = self.get_shared(core, addr);
            self.fill_l2(core, addr, state, mask);
            self.fill_l1(core, addr, state, mask);
            ReadOutcome {
                latency,
                revealed: self.recon.enabled && mask.is_revealed(wi),
                served_by,
            }
        };
        if out.revealed {
            self.stats.revealed_loads += 1;
        }
        self.emit(MemEventKind::Read {
            core,
            addr,
            latency: out.latency,
            served_by: out.served_by,
            revealed: out.revealed,
        });
        self.check_observed_reveal(core, addr, out.revealed);
        out
    }

    /// A store performed by `core` at `addr` (store-buffer drain).
    /// Acquires write permission and conceals the written word.
    pub fn write(&mut self, core: usize, addr: u64) -> WriteOutcome {
        let (latency, _) = self.acquire_for_write(core, addr);
        self.conceal_word(core, addr);
        self.stats.stores_performed += 1;
        self.emit(MemEventKind::Write {
            core,
            addr,
            latency,
        });
        WriteOutcome { latency }
    }

    /// An atomic read-modify-write by `core` at `addr`. Returns the
    /// reveal status of the word *before* the write conceals it.
    pub fn rmw(&mut self, core: usize, addr: u64) -> ReadOutcome {
        let wi = word_index(addr);
        let (latency, mask_before) = self.acquire_for_write(core, addr);
        let revealed = self.recon.enabled && mask_before.is_revealed(wi);
        self.check_observed_reveal(core, addr, revealed);
        self.conceal_word(core, addr);
        self.stats.stores_performed += 1;
        self.emit(MemEventKind::Rmw {
            core,
            addr,
            latency,
            revealed,
        });
        ReadOutcome {
            latency,
            revealed,
            served_by: ServedBy::L1,
        }
    }

    /// A reveal request from the commit stage: a load pair committed and
    /// the word at `addr` (the first load's target) is now public.
    ///
    /// Best-effort per the paper: the request sets the bit in the
    /// requesting core's L1 if the line is present, else at the deepest
    /// covered level holding the line; otherwise it is dropped (always
    /// safe — only a lost optimization).
    ///
    /// Returns `true` if a bit was set.
    pub fn reveal(&mut self, core: usize, addr: u64) -> bool {
        if !self.recon.enabled {
            return false;
        }
        let wi = word_index(addr);
        let bit = RevealMask::from_bits(1 << wi);
        let set = 'set: {
            if self.cores[core].l1.or_mask(addr, bit) {
                break 'set true;
            }
            if self.recon.levels.covers_l2() && self.cores[core].l2.or_mask(addr, bit) {
                break 'set true;
            }
            if self.recon.levels.covers_llc() {
                let line = line_of(addr);
                // Only the directory copy may be updated when no private
                // cache owns the line (an owner holds the only coherent
                // copy).
                let owned_elsewhere = matches!(
                    self.dir.get(&line), Some(DirState::Owned { owner }) if *owner != core
                );
                if !owned_elsewhere && self.llc.or_mask(addr, bit) {
                    break 'set true;
                }
            }
            false
        };
        if set {
            self.stats.reveals_set += 1;
            // The reveal came from a committed load pair: the word is now
            // legitimately public until a committed store conceals it.
            if let Some(s) = &mut self.sound {
                s.legit.insert(addr & !(WORD_BYTES - 1), ());
            }
            self.emit(MemEventKind::RevealSet { core, addr });
        } else {
            self.stats.reveals_dropped += 1;
            self.emit(MemEventKind::RevealDropped { core, addr });
        }
        set
    }

    // ------------------------------------------------------------------
    // Probes (for tests and the simulator's assertions)
    // ------------------------------------------------------------------

    /// MESI state of the line in `core`'s L1, if present.
    #[must_use]
    pub fn l1_state(&self, core: usize, addr: u64) -> Option<Mesi> {
        self.cores[core].l1.state_of(addr)
    }

    /// MESI state of the line in `core`'s L2, if present.
    #[must_use]
    pub fn l2_state(&self, core: usize, addr: u64) -> Option<Mesi> {
        self.cores[core].l2.state_of(addr)
    }

    /// Directory state of the line, if tracked.
    #[must_use]
    pub fn dir_state(&self, addr: u64) -> Option<DirState> {
        self.dir.get(&line_of(addr)).copied()
    }

    /// Whether the word would be observed revealed by `core` (without
    /// changing any state). Checks L1, then L2, then the directory.
    #[must_use]
    pub fn probe_revealed(&self, core: usize, addr: u64) -> bool {
        if !self.recon.enabled {
            return false;
        }
        let wi = word_index(addr);
        if let Some(m) = self.cores[core].l1.mask_of(addr) {
            return m.is_revealed(wi);
        }
        if let Some(m) = self.cores[core].l2.mask_of(addr) {
            return m.is_revealed(wi);
        }
        self.llc.mask_of(addr).is_some_and(|m| m.is_revealed(wi))
    }

    // ------------------------------------------------------------------
    // Invariant audit + soft-error injection
    // ------------------------------------------------------------------

    /// Full invariant sweep of the memory hierarchy. Read-only; returns
    /// every violation found (empty on healthy state).
    ///
    /// Checks, in order:
    ///
    /// * per-array structural invariants ([`CacheArray::audit`]);
    /// * **L1/L2 inclusion**: every L1-resident line is L2-resident with
    ///   the *same* MESI state (every fill/demote/invalidate path moves
    ///   the pair together), and the L2 mask is a subset of the L1 mask
    ///   (reveals land in the L1 first, merges flow downward only);
    /// * **SWMR**: at most one core holds a writable (E/M) copy, and a
    ///   writable copy is the *only* private copy of its line;
    /// * **directory consistency**: every privately held line has a
    ///   directory entry matching its holders (`Owned{owner}` names the
    ///   sole E/M holder, `Shared` lists exactly the S holders,
    ///   `Uncached` has none), every listed sharer/owner is a real core
    ///   that actually holds the line, and the in-cache directory
    ///   requires every tracked line to be LLC-resident.
    #[must_use]
    pub fn audit(&self) -> Vec<recon::AuditViolation> {
        use recon::AuditViolation;
        let mut out = Vec::new();
        for (i, p) in self.cores.iter().enumerate() {
            p.l1.audit(&format!("mem.core{i}.l1"), &mut out);
            p.l2.audit(&format!("mem.core{i}.l2"), &mut out);
        }
        self.llc.audit("mem.llc", &mut out);

        // L1/L2 pairing per core.
        for (i, p) in self.cores.iter().enumerate() {
            for (line, l1_state, l1_mask) in p.l1.iter_lines() {
                match p.l2.state_of(line) {
                    None => out.push(AuditViolation::new(
                        "l1-l2-inclusion",
                        format!("mem.core{i}"),
                        format!("line {line:#x} in L1 ({l1_state:?}) but not in L2"),
                    )),
                    Some(l2_state) => {
                        if l2_state != l1_state {
                            out.push(AuditViolation::new(
                                "l1-l2-state",
                                format!("mem.core{i}"),
                                format!("line {line:#x}: L1 {l1_state:?} vs L2 {l2_state:?}"),
                            ));
                        }
                        let l2_mask = p.l2.mask_of(line).unwrap_or_default();
                        if l2_mask.bits() & !l1_mask.bits() != 0 {
                            out.push(AuditViolation::new(
                                "l1-mask-subset",
                                format!("mem.core{i}"),
                                format!(
                                    "line {line:#x}: L2 mask {:#04x} not a subset of \
                                     L1 mask {:#04x}",
                                    l2_mask.bits(),
                                    l1_mask.bits()
                                ),
                            ));
                        }
                    }
                }
            }
        }

        // LLC residency, collected once: the census and the directory
        // walk below each probe it per line, and at paper geometry a
        // per-probe way scan (32 ways × thousands of tracked lines)
        // would dominate the whole sweep.
        let mut llc_resident: FxHashMap<u64, ()> =
            FxHashMap::with_capacity_and_hasher(self.cfg.llc.num_lines() * 2, Default::default());
        llc_resident.extend(self.llc.iter_lines().map(|(l, _, _)| (l, ())));

        // Per-line holder census (L2 is the authoritative private
        // presence; L1-only residency is already flagged above). One
        // flat sorted vector, grouped by line — this sweep runs every
        // `audit_every_cycles`, so no per-line heap traffic.
        let mut census: Vec<(u64, usize, Mesi)> = Vec::new();
        for (i, p) in self.cores.iter().enumerate() {
            for (line, state, _) in p.l2.iter_lines() {
                census.push((line, i, state));
            }
        }
        census.sort_unstable();
        let mut start = 0;
        while start < census.len() {
            let line = census[start].0;
            let mut end = start;
            while end < census.len() && census[end].0 == line {
                end += 1;
            }
            let holders = &census[start..end];
            start = end;
            let writable_count = holders.iter().filter(|(_, _, s)| s.writable()).count();
            if writable_count > 1 || (writable_count == 1 && holders.len() > 1) {
                let writable: Vec<usize> = holders
                    .iter()
                    .filter(|(_, _, s)| s.writable())
                    .map(|&(_, c, _)| c)
                    .collect();
                out.push(AuditViolation::new(
                    "swmr",
                    "mem.dir",
                    format!(
                        "line {line:#x}: writable copy on core(s) {writable:?} \
                         alongside {} private copies",
                        holders.len()
                    ),
                ));
            }
            match self.dir.get(&line).copied() {
                None => out.push(AuditViolation::new(
                    "dir-entry-missing",
                    "mem.dir",
                    format!(
                        "line {line:#x} held privately by core(s) {:?} but untracked",
                        holders.iter().map(|&(_, c, _)| c).collect::<Vec<_>>()
                    ),
                )),
                Some(DirState::Uncached) => out.push(AuditViolation::new(
                    "dir-uncached-held",
                    "mem.dir",
                    format!(
                        "line {line:#x} marked Uncached but held by core(s) {:?}",
                        holders.iter().map(|&(_, c, _)| c).collect::<Vec<_>>()
                    ),
                )),
                Some(DirState::Shared(sharers)) => {
                    for &(_, c, state) in holders {
                        if !sharers.contains(c) {
                            out.push(AuditViolation::new(
                                "dir-sharer-unlisted",
                                "mem.dir",
                                format!("line {line:#x}: core {c} holds but is not listed"),
                            ));
                        }
                        if state != Mesi::Shared {
                            out.push(AuditViolation::new(
                                "dir-shared-writable",
                                "mem.dir",
                                format!(
                                    "line {line:#x}: core {c} holds {state:?} under a \
                                     Shared directory entry"
                                ),
                            ));
                        }
                    }
                }
                Some(DirState::Owned { owner }) => {
                    for &(_, c, state) in holders {
                        if c != owner {
                            out.push(AuditViolation::new(
                                "dir-owner-exclusive",
                                "mem.dir",
                                format!(
                                    "line {line:#x}: owned by core {owner} but core {c} \
                                     holds {state:?}"
                                ),
                            ));
                        } else if !state.writable() {
                            out.push(AuditViolation::new(
                                "dir-owner-state",
                                "mem.dir",
                                format!(
                                    "line {line:#x}: owner core {owner} holds {state:?}, \
                                     expected Exclusive/Modified"
                                ),
                            ));
                        }
                    }
                }
            }
            if !llc_resident.contains_key(&line) {
                out.push(AuditViolation::new(
                    "llc-inclusion",
                    "mem.llc",
                    format!("line {line:#x} held privately but absent from the LLC"),
                ));
            }
        }

        // Directory entries themselves: tracked lines are LLC-resident
        // (in-cache directory), listed cores exist and hold the line.
        // Iterated in map order — the final sort below restores
        // deterministic reporting, and only a damaged system pays it.
        for (&line, &dstate) in &self.dir {
            if !llc_resident.contains_key(&line) {
                out.push(AuditViolation::new(
                    "dir-entry-evicted-line",
                    "mem.dir",
                    format!("line {line:#x} tracked as {dstate:?} but not LLC-resident"),
                ));
            }
            // Walk listed holders without collecting them (this runs
            // for every tracked line, every sweep).
            match dstate {
                DirState::Uncached => {}
                DirState::Shared(s) => {
                    for c in s.iter() {
                        self.audit_listed_holder(line, c, &mut out);
                    }
                }
                DirState::Owned { owner } => self.audit_listed_holder(line, owner, &mut out),
            }
            if matches!(dstate, DirState::Shared(s) if s.is_empty()) {
                out.push(AuditViolation::new(
                    "dir-empty-sharers",
                    "mem.dir",
                    format!("line {line:#x}: Shared entry with an empty sharer set"),
                ));
            }
        }
        if !out.is_empty() {
            // The directory walk above follows hash-map order; sorting
            // here keeps violation reports deterministic per seed.
            out.sort_unstable_by(|a, b| {
                (&a.site, &a.invariant, &a.detail).cmp(&(&b.site, &b.invariant, &b.detail))
            });
        }
        out
    }

    /// One directory-listed holder: must be a real core that actually
    /// holds the line privately.
    fn audit_listed_holder(&self, line: u64, c: usize, out: &mut Vec<recon::AuditViolation>) {
        use recon::AuditViolation;
        if c >= self.cores.len() {
            out.push(AuditViolation::new(
                "dir-core-range",
                "mem.dir",
                format!(
                    "line {line:#x}: lists core {c}, system has {}",
                    self.cores.len()
                ),
            ));
        } else if self.cores[c].l2.state_of(line).is_none() {
            out.push(AuditViolation::new(
                "dir-holder-absent",
                "mem.dir",
                format!("line {line:#x}: listed holder core {c} has no private copy"),
            ));
        }
    }

    /// Soft-error injection: flips one reveal-mask bit somewhere in the
    /// hierarchy (random level, random slot, random word). Returns a
    /// description of the flip.
    pub fn inject_mask_flip(&mut self, rng: &mut recon_isa::rng::SplitMix64) -> Option<String> {
        use recon_isa::rng::Rng as _;
        let arrays = self.cores.len() * 2 + 1;
        let pick = rng.next_u64() as usize % arrays;
        let (label, desc) = if pick < self.cores.len() {
            (
                format!("core{pick}.l1"),
                self.cores[pick].l1.inject_mask_bit(rng),
            )
        } else if pick < self.cores.len() * 2 {
            let c = pick - self.cores.len();
            (format!("core{c}.l2"), self.cores[c].l2.inject_mask_bit(rng))
        } else {
            ("llc".to_string(), self.llc.inject_mask_bit(rng))
        };
        desc.map(|d| format!("{label}: {d}"))
    }

    /// Soft-error injection: corrupts coherence state — either a
    /// directory entry (owner/sharer bits decay) or a cached line's
    /// MESI state field. Returns a description, or `None` when there is
    /// no coherence state to corrupt yet.
    pub fn inject_dir_flip(&mut self, rng: &mut recon_isa::rng::SplitMix64) -> Option<String> {
        use recon_isa::rng::Rng as _;
        if rng.next_u64().is_multiple_of(2) {
            // Corrupt a directory entry (deterministic pick: sorted keys).
            let mut lines: Vec<u64> = self.dir.keys().copied().collect();
            lines.sort_unstable();
            if let Some(&line) = lines.get(rng.next_u64() as usize % lines.len().max(1)) {
                let old = self.dir[&line];
                let new = match old {
                    DirState::Owned { owner } if self.cores.len() > 1 => DirState::Owned {
                        owner: (owner + 1 + rng.next_u64() as usize % (self.cores.len() - 1))
                            % self.cores.len(),
                    },
                    DirState::Owned { .. } => DirState::Uncached,
                    DirState::Shared(mut s) => {
                        let c = rng.next_u64() as usize % self.cores.len();
                        if s.contains(c) {
                            s.remove(c);
                        } else {
                            s.insert(c);
                        }
                        DirState::Shared(s)
                    }
                    DirState::Uncached => DirState::Owned {
                        owner: rng.next_u64() as usize % self.cores.len(),
                    },
                };
                self.dir.insert(line, new);
                return Some(format!("dir line {line:#x}: {old:?} -> {new:?}"));
            }
        }
        // Corrupt a MESI state field in a random array.
        let arrays = self.cores.len() * 2 + 1;
        let pick = rng.next_u64() as usize % arrays;
        let (label, desc) = if pick < self.cores.len() {
            (
                format!("core{pick}.l1"),
                self.cores[pick].l1.inject_state_flip(rng),
            )
        } else if pick < self.cores.len() * 2 {
            let c = pick - self.cores.len();
            (
                format!("core{c}.l2"),
                self.cores[c].l2.inject_state_flip(rng),
            )
        } else {
            ("llc".to_string(), self.llc.inject_state_flip(rng))
        };
        desc.map(|d| format!("{label}: {d}"))
    }

    // ------------------------------------------------------------------
    // Protocol internals
    // ------------------------------------------------------------------

    /// The authoritative mask of `core`'s private copy: the L1 copy if
    /// present (reveals and conceals are applied there first), else L2.
    fn private_auth_mask(&self, core: usize, addr: u64) -> RevealMask {
        self.cores[core]
            .l1
            .mask_of(addr)
            .or_else(|| self.cores[core].l2.mask_of(addr))
            .unwrap_or_default()
    }

    /// GetS: returns `(latency, granted state, granted mask, served_by)`.
    fn get_shared(&mut self, core: usize, addr: u64) -> (u32, Mesi, RevealMask, ServedBy) {
        let line = line_of(addr);
        if self.llc.touch(addr).is_some() {
            let dstate = self.dir.get(&line).copied().unwrap_or_default();
            match dstate {
                DirState::Owned { owner } if owner != core => {
                    // Downgrade the owner; its mask is the coherent copy.
                    let auth = self.private_auth_mask(owner, addr);
                    self.demote_to_shared(owner, addr, auth);
                    if self.recon.levels.covers_llc() {
                        self.llc.set_mask(addr, auth); // overwrite, not OR
                    }
                    let sharers = [owner, core].into_iter().collect();
                    self.dir.insert(line, DirState::Shared(sharers));
                    self.stats.llc_hits += 1;
                    self.stats.remote_forwards += 1;
                    self.emit(MemEventKind::Downgrade { owner, line });
                    // The data + mask travel cache-to-cache (an L2-level
                    // transaction): the mask arrives only if L2 is covered.
                    let granted = if self.recon.levels.covers_l2() {
                        auth
                    } else {
                        RevealMask::default()
                    };
                    (
                        self.cfg.lat.remote_fwd,
                        Mesi::Shared,
                        granted,
                        ServedBy::RemoteCache,
                    )
                }
                DirState::Owned { .. } => {
                    // Our own stale ownership cannot persist past an L2
                    // eviction (which notifies the directory); treat as a
                    // fresh exclusive grant.
                    debug_assert!(false, "directory owner with no private copy");
                    self.dir.insert(line, DirState::Owned { owner: core });
                    self.stats.llc_hits += 1;
                    let granted = self.granted_from_dir(addr);
                    (
                        self.cfg.lat.llc_hit,
                        Mesi::Exclusive,
                        granted,
                        ServedBy::Llc,
                    )
                }
                DirState::Shared(mut sharers) => {
                    sharers.insert(core);
                    self.dir.insert(line, DirState::Shared(sharers));
                    self.stats.llc_hits += 1;
                    let granted = self.granted_from_dir(addr);
                    (self.cfg.lat.llc_hit, Mesi::Shared, granted, ServedBy::Llc)
                }
                DirState::Uncached => {
                    self.dir.insert(line, DirState::Owned { owner: core });
                    self.stats.llc_hits += 1;
                    let granted = self.granted_from_dir(addr);
                    (
                        self.cfg.lat.llc_hit,
                        Mesi::Exclusive,
                        granted,
                        ServedBy::Llc,
                    )
                }
            }
        } else {
            // LLC miss: fetch from memory, all words concealed.
            self.install_llc(addr);
            self.dir.insert(line, DirState::Owned { owner: core });
            self.stats.mem_fetches += 1;
            self.emit(MemEventKind::MemFetch { line });
            (
                self.cfg.lat.mem,
                Mesi::Exclusive,
                RevealMask::default(),
                ServedBy::Memory,
            )
        }
    }

    /// Grants the directory's mask copy to a requester, respecting level
    /// coverage.
    fn granted_from_dir(&self, addr: u64) -> RevealMask {
        if self.recon.levels.covers_llc() {
            self.llc.mask_of(addr).unwrap_or_default()
        } else {
            RevealMask::default()
        }
    }

    /// Acquires write permission (GetM / upgrade) for `core` at `addr`.
    /// Returns `(latency, coherent mask before the write)` with the line
    /// installed Modified in the core's L1 and L2.
    fn acquire_for_write(&mut self, core: usize, addr: u64) -> (u32, RevealMask) {
        // Fast path: already writable in L1.
        if let Some((state, mask)) = self.cores[core].l1.touch(addr) {
            if state.writable() {
                if state == Mesi::Exclusive {
                    // Silent E -> M upgrade.
                    self.cores[core].l1.set_state(addr, Mesi::Modified);
                    self.cores[core].l2.set_state(addr, Mesi::Modified);
                }
                return (self.cfg.lat.l1_hit, mask);
            }
            // Shared in L1: upgrade at the directory.
            let own = mask;
            let (lat, dir_mask) = self.get_modified(core, addr);
            let merged = own | dir_mask;
            self.cores[core].l1.fill(addr, Mesi::Modified, merged);
            let l2_mask = self.mask_for_l2(merged);
            self.cores[core].l2.fill(addr, Mesi::Modified, l2_mask);
            return (self.cfg.lat.l1_hit + lat, merged);
        }
        if let Some((state, mask)) = self.cores[core].l2.touch(addr) {
            if state.writable() {
                self.cores[core].l2.set_state(addr, Mesi::Modified);
                self.fill_l1(core, addr, Mesi::Modified, mask);
                return (self.cfg.lat.l2_hit, mask);
            }
            let own = mask;
            let (lat, dir_mask) = self.get_modified(core, addr);
            let merged = own | dir_mask;
            let l2_mask = self.mask_for_l2(merged);
            self.cores[core].l2.fill(addr, Mesi::Modified, l2_mask);
            self.fill_l1(core, addr, Mesi::Modified, merged);
            return (self.cfg.lat.l2_hit + lat, merged);
        }
        // Full miss with intent to write.
        let (lat, dir_mask) = self.get_modified(core, addr);
        self.fill_l2(core, addr, Mesi::Modified, dir_mask);
        self.fill_l1(core, addr, Mesi::Modified, dir_mask);
        (lat, dir_mask)
    }

    /// GetM at the directory: invalidates all other holders and returns
    /// `(latency, coherent mask)`. The caller installs the line.
    fn get_modified(&mut self, core: usize, addr: u64) -> (u32, RevealMask) {
        let line = line_of(addr);
        if self.llc.touch(addr).is_some() {
            let dstate = self.dir.get(&line).copied().unwrap_or_default();
            let (lat, mask) = match dstate {
                DirState::Owned { owner } if owner != core => {
                    // Transfer ownership: the old owner's mask travels to
                    // the new writer on the invalidation (§5.3 case iii).
                    let auth = self.private_auth_mask(owner, addr);
                    self.invalidate_private(owner, addr);
                    self.stats.invalidations += 1;
                    self.stats.remote_forwards += 1;
                    self.emit(MemEventKind::Invalidate {
                        victim: owner,
                        line,
                    });
                    let granted = if self.recon.levels.covers_l2() {
                        auth
                    } else {
                        RevealMask::default()
                    };
                    (self.cfg.lat.remote_fwd + self.cfg.lat.upgrade, granted)
                }
                DirState::Owned { .. } => {
                    debug_assert!(false, "directory owner with no private copy");
                    (self.cfg.lat.llc_hit, self.granted_from_dir(addr))
                }
                DirState::Shared(sharers) => {
                    // `sharers` is a copied bitset, so the other holders
                    // can be walked directly — no per-invalidation
                    // allocation on this (hot) upgrade path.
                    let mut invalidated = false;
                    for sharer in sharers.iter().filter(|&s| s != core) {
                        // Invalidated readers lose their masks (footnote 1).
                        let lost = self.private_auth_mask(sharer, addr);
                        self.stats.mask_bits_lost_inval += u64::from(lost.count_revealed());
                        self.invalidate_private(sharer, addr);
                        self.stats.invalidations += 1;
                        self.emit(MemEventKind::Invalidate {
                            victim: sharer,
                            line,
                        });
                        invalidated = true;
                    }
                    self.stats.upgrades += 1;
                    self.emit(MemEventKind::Upgrade { core, line });
                    let lat = if invalidated {
                        self.cfg.lat.llc_hit + self.cfg.lat.upgrade
                    } else {
                        self.cfg.lat.llc_hit
                    };
                    (lat, self.granted_from_dir(addr))
                }
                DirState::Uncached => (self.cfg.lat.llc_hit, self.granted_from_dir(addr)),
            };
            self.dir.insert(line, DirState::Owned { owner: core });
            self.stats.llc_hits += 1;
            (lat, mask)
        } else {
            self.install_llc(addr);
            self.dir.insert(line, DirState::Owned { owner: core });
            self.stats.mem_fetches += 1;
            self.emit(MemEventKind::MemFetch { line });
            (self.cfg.lat.mem, RevealMask::default())
        }
    }

    /// Conceals the word at `addr` in `core`'s (Modified) private copy.
    fn conceal_word(&mut self, core: usize, addr: u64) {
        if !self.recon.enabled {
            return;
        }
        let wi = word_index(addr);
        self.cores[core].l1.update_mask(addr, |m| m.conceal(wi));
        self.cores[core].l2.update_mask(addr, |m| m.conceal(wi));
        self.stats.conceals += 1;
        // A committed store retires the word's public status: any reveal
        // bit seen for it afterwards is a soundness violation.
        if let Some(s) = &mut self.sound {
            s.legit.remove(&(addr & !(WORD_BYTES - 1)));
        }
    }

    fn mask_for_l2(&self, mask: RevealMask) -> RevealMask {
        if self.recon.levels.covers_l2() {
            mask
        } else {
            RevealMask::default()
        }
    }

    /// Downgrades `core`'s private copies of `addr` to Shared, setting
    /// them to the authoritative mask.
    fn demote_to_shared(&mut self, core: usize, addr: u64, auth: RevealMask) {
        if self.cores[core].l1.state_of(addr).is_some() {
            self.cores[core].l1.set_state(addr, Mesi::Shared);
            self.cores[core].l1.set_mask(addr, auth);
        }
        if self.cores[core].l2.state_of(addr).is_some() {
            self.cores[core].l2.set_state(addr, Mesi::Shared);
            let m = self.mask_for_l2(auth);
            self.cores[core].l2.set_mask(addr, m);
        }
    }

    /// Drops `core`'s private copies of `addr` (invalidation).
    fn invalidate_private(&mut self, core: usize, addr: u64) {
        self.cores[core].l1.invalidate(addr);
        self.cores[core].l2.invalidate(addr);
    }

    /// Installs a line in the LLC, back-invalidating the victim from all
    /// private caches (in-cache directory: losing the LLC line loses the
    /// directory entry and all reveal metadata).
    fn install_llc(&mut self, addr: u64) {
        if let Some(ev) = self.llc.fill(addr, Mesi::Shared, RevealMask::default()) {
            let victim_line = line_of(ev.addr);
            let lost_dir = ev.mask.count_revealed();
            let mut lost = u64::from(lost_dir);
            for core in 0..self.cores.len() {
                if self.cores[core].l1.state_of(ev.addr).is_some()
                    || self.cores[core].l2.state_of(ev.addr).is_some()
                {
                    lost += u64::from(self.private_auth_mask(core, ev.addr).count_revealed());
                    self.invalidate_private(core, ev.addr);
                    self.stats.invalidations += 1;
                    self.emit(MemEventKind::Invalidate {
                        victim: core,
                        line: victim_line,
                    });
                }
            }
            self.stats.mask_bits_lost_evict += lost;
            self.dir.remove(&victim_line);
            self.emit(MemEventKind::LlcEvict { line: victim_line });
        }
    }

    /// Fills `core`'s L1, folding the victim's mask into the L2 copy.
    fn fill_l1(&mut self, core: usize, addr: u64, state: Mesi, mask: RevealMask) {
        if let Some(ev) = self.cores[core].l1.fill(addr, state, mask) {
            if self.recon.levels.covers_l2() {
                let merged = if ev.state == Mesi::Modified {
                    self.cores[core].l2.set_mask(ev.addr, ev.mask) // owner writeback overwrites
                } else {
                    self.cores[core].l2.or_mask(ev.addr, ev.mask) // reader eviction ORs (packed)
                };
                if merged {
                    self.stats.mask_merges += 1;
                } else {
                    self.stats.mask_bits_lost_evict += u64::from(ev.mask.count_revealed());
                }
            } else {
                self.stats.mask_bits_lost_evict += u64::from(ev.mask.count_revealed());
            }
        }
    }

    /// Fills `core`'s L2 (enforcing inclusion on the victim) and notifies
    /// the directory of the victim's departure.
    fn fill_l2(&mut self, core: usize, addr: u64, state: Mesi, mask: RevealMask) {
        let l2_mask = self.mask_for_l2(mask);
        if let Some(ev) = self.cores[core].l2.fill(addr, state, l2_mask) {
            // Inclusion: the victim may still be in the L1; its L1 mask is
            // the freshest copy.
            let auth = match self.cores[core].l1.invalidate(ev.addr) {
                Some((_, l1_mask)) => l1_mask,
                None => ev.mask,
            };
            self.notify_dir_evict(core, ev.addr, ev.state, auth);
        }
    }

    /// A private cache evicted its copy: update sharer set and fold the
    /// mask into the directory per the §5.3 rules.
    fn notify_dir_evict(&mut self, core: usize, addr: u64, state: Mesi, mask: RevealMask) {
        let line = line_of(addr);
        let Some(dstate) = self.dir.get(&line).copied() else {
            // The LLC already evicted the line (back-invalidation raced
            // ahead); the metadata is gone.
            self.stats.mask_bits_lost_evict += u64::from(mask.count_revealed());
            return;
        };
        let next = match dstate {
            DirState::Owned { owner } if owner == core => DirState::Uncached,
            DirState::Shared(mut sharers) => {
                sharers.remove(core);
                if sharers.is_empty() {
                    DirState::Uncached
                } else {
                    DirState::Shared(sharers)
                }
            }
            other => other,
        };
        self.dir.insert(line, next);
        if self.recon.levels.covers_llc() {
            let updated = if state.owns_mask() {
                self.llc.set_mask(addr, mask) // writer writeback overwrites
            } else {
                self.llc.or_mask(addr, mask) // reader eviction ORs (packed)
            };
            if updated {
                self.stats.mask_merges += 1;
            }
        } else {
            self.stats.mask_bits_lost_evict += u64::from(mask.count_revealed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon::ReconLevels;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(cores, MemConfig::scaled(), ReconConfig::default())
    }

    #[test]
    fn cold_read_comes_from_memory_exclusive() {
        let mut m = sys(1);
        let r = m.read(0, 0x1000);
        assert_eq!(r.served_by, ServedBy::Memory);
        assert!(!r.revealed);
        assert_eq!(m.l1_state(0, 0x1000), Some(Mesi::Exclusive));
        assert_eq!(m.dir_state(0x1000), Some(DirState::Owned { owner: 0 }));
    }

    #[test]
    fn second_read_hits_l1() {
        let mut m = sys(1);
        m.read(0, 0x1000);
        let r = m.read(0, 0x1000);
        assert_eq!(r.served_by, ServedBy::L1);
        assert_eq!(r.latency, 2);
    }

    #[test]
    fn reveal_then_read_reports_revealed() {
        let mut m = sys(1);
        m.read(0, 0x1008);
        assert!(m.reveal(0, 0x1008));
        let r = m.read(0, 0x1008);
        assert!(r.revealed);
        // A different word in the same line stays concealed.
        assert!(!m.read(0, 0x1010).revealed);
    }

    #[test]
    fn store_conceals_word() {
        let mut m = sys(1);
        m.read(0, 0x1008);
        m.reveal(0, 0x1008);
        assert!(m.read(0, 0x1008).revealed);
        m.write(0, 0x1008);
        assert!(!m.read(0, 0x1008).revealed, "performed store conceals");
        assert_eq!(m.l1_state(0, 0x1008), Some(Mesi::Modified));
    }

    #[test]
    fn store_to_exclusive_is_silent_upgrade() {
        let mut m = sys(1);
        m.read(0, 0x2000);
        assert_eq!(m.l1_state(0, 0x2000), Some(Mesi::Exclusive));
        let w = m.write(0, 0x2000);
        assert_eq!(w.latency, 2, "no directory transaction");
        assert_eq!(m.l1_state(0, 0x2000), Some(Mesi::Modified));
    }

    #[test]
    fn sharing_downgrades_owner_and_carries_mask() {
        let mut m = sys(2);
        m.read(0, 0x3000);
        m.reveal(0, 0x3000); // core 0 reveals locally in its L1
        let r = m.read(1, 0x3000); // core 1 reads: owner downgraded
        assert_eq!(r.served_by, ServedBy::RemoteCache);
        assert!(r.revealed, "the reveal travelled with the c2c forward");
        assert_eq!(m.l1_state(0, 0x3000), Some(Mesi::Shared));
        assert_eq!(m.l1_state(1, 0x3000), Some(Mesi::Shared));
        assert!(matches!(m.dir_state(0x3000), Some(DirState::Shared(s)) if s.len() == 2));
    }

    #[test]
    fn writer_invalidates_sharers_and_their_masks_are_lost() {
        let mut m = sys(2);
        m.read(0, 0x3000);
        m.read(1, 0x3000);
        m.reveal(1, 0x3008); // core 1's private reveal (same line)
        m.write(0, 0x3000); // core 0 upgrades: invalidates core 1
        assert_eq!(m.l1_state(1, 0x3000), None);
        assert_eq!(m.dir_state(0x3000), Some(DirState::Owned { owner: 0 }));
        assert!(m.stats().mask_bits_lost_inval >= 1);
        // Core 1 rereads: the word it revealed is concealed again (its
        // mask copy was lost with the invalidation, and the writer's copy
        // never had the bit).
        assert!(!m.read(1, 0x3008).revealed);
    }

    #[test]
    fn ownership_transfer_carries_mask_to_next_writer() {
        let mut m = sys(2);
        m.write(0, 0x4000); // core 0 owns M
        m.reveal(0, 0x4008);
        m.write(1, 0x4000); // core 1 takes ownership
                            // Mask travelled writer -> writer: core 1 sees word 1 revealed.
        assert!(m.read(1, 0x4008).revealed);
        assert_eq!(m.l1_state(0, 0x4000), None);
    }

    #[test]
    fn concealed_overwrite_wins_over_stale_directory() {
        let mut m = sys(2);
        // Core 0 reveals and the directory learns via core 1's read.
        m.read(0, 0x5008);
        m.reveal(0, 0x5008);
        m.read(1, 0x5008); // downgrade: dir mask = revealed
                           // Core 0 now writes the word: conceals in its private copy.
        m.write(0, 0x5008);
        // Core 1 rereads: must see concealed (owner's copy authoritative).
        assert!(!m.read(1, 0x5008).revealed);
    }

    #[test]
    fn reveal_requests_can_be_dropped() {
        let mut m = sys(1);
        assert!(!m.reveal(0, 0x6000), "line not cached anywhere");
        assert_eq!(m.stats().reveals_dropped, 1);
    }

    #[test]
    fn disabled_recon_never_reveals() {
        let mut m = MemorySystem::new(1, MemConfig::scaled(), ReconConfig::disabled());
        m.read(0, 0x1000);
        assert!(!m.reveal(0, 0x1000));
        assert!(!m.read(0, 0x1000).revealed);
    }

    #[test]
    fn l1_only_coverage_loses_mask_on_l1_eviction() {
        let cfg = ReconConfig {
            levels: ReconLevels::L1Only,
            ..ReconConfig::default()
        };
        let mut m = MemorySystem::new(1, MemConfig::scaled(), cfg);
        m.read(0, 0x0);
        m.reveal(0, 0x0);
        assert!(m.read(0, 0x0).revealed);
        // Thrash the L1 set: scaled L1 is 2 KiB 8-way = 4 sets; lines
        // mapping to set 0 are 256 B apart.
        for i in 1..=8u64 {
            m.read(0, i * 256);
        }
        assert_eq!(m.l1_state(0, 0x0), None, "line evicted from L1");
        // With L1-only coverage the reveal is gone after refill.
        assert!(!m.read(0, 0x0).revealed);
        assert!(m.stats().mask_bits_lost_evict >= 1);
    }

    #[test]
    fn full_coverage_preserves_mask_across_l1_eviction() {
        let mut m = sys(1);
        m.read(0, 0x0);
        m.reveal(0, 0x0);
        for i in 1..=8u64 {
            m.read(0, i * 256);
        }
        assert_eq!(m.l1_state(0, 0x0), None, "line evicted from L1");
        assert!(m.read(0, 0x0).revealed, "mask preserved in the L2");
    }

    #[test]
    fn rmw_returns_pre_state_and_conceals() {
        let mut m = sys(1);
        m.read(0, 0x7008);
        m.reveal(0, 0x7008);
        let r = m.rmw(0, 0x7008);
        assert!(r.revealed, "pre-write state was revealed");
        assert!(!m.read(0, 0x7008).revealed, "rmw concealed the word");
    }

    #[test]
    fn stats_accumulate() {
        let mut m = sys(1);
        m.read(0, 0x0);
        m.read(0, 0x0);
        m.write(0, 0x40);
        let s = m.stats();
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.mem_fetches, 2);
        assert_eq!(s.stores_performed, 1);
        m.reset_stats();
        assert_eq!(m.stats().total_loads(), 0);
    }

    #[test]
    fn directory_or_merge_across_consecutive_evictions() {
        // Two cores reveal different words of the same line; both evict;
        // the directory accumulates both via OR (§5.3).
        let mut m = sys(2);
        m.read(0, 0x0);
        m.read(1, 0x0);
        m.reveal(0, 0x0); // word 0 by core 0
        m.reveal(1, 0x8); // word 1 by core 1
                          // Evict from both cores' private caches: thrash their L2 sets.
                          // Scaled L2 is 64 KiB 16-way = 64 sets; same-set stride = 4 KiB.
        for i in 1..=16u64 {
            m.read(0, i * 4096);
            m.read(1, i * 4096);
        }
        assert_eq!(m.l2_state(0, 0x0), None);
        assert_eq!(m.l2_state(1, 0x0), None);
        // A third read finds both reveals accumulated in the directory.
        let r0 = m.read(0, 0x0);
        assert!(r0.revealed);
        assert!(m.read(0, 0x8).revealed);
    }
}

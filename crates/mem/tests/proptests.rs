//! Property-based tests of the coherent memory system: reveal/conceal
//! metadata must follow the §5.3 rules under arbitrary interleavings of
//! reads, writes, reveals, and RMWs from multiple cores.

use proptest::prelude::*;

use recon::ReconConfig;
use recon_mem::{CacheGeometry, MemConfig, MemorySystem, Mesi};

/// A memory-system operation from a random core on a small address pool.
#[derive(Clone, Copy, Debug)]
enum Op {
    Read { core: usize, addr: u64 },
    Write { core: usize, addr: u64 },
    Reveal { core: usize, addr: u64 },
    Rmw { core: usize, addr: u64 },
}

/// Small pool: 8 lines × 8 words keeps collisions frequent.
fn op() -> impl Strategy<Value = Op> {
    let addr = (0u64..8, 0u64..8).prop_map(|(l, w)| l * 64 + w * 8);
    (0usize..3, addr, 0u32..4).prop_map(|(core, addr, kind)| match kind {
        0 => Op::Read { core, addr },
        1 => Op::Write { core, addr },
        2 => Op::Reveal { core, addr },
        _ => Op::Rmw { core, addr },
    })
}

fn tiny_config() -> MemConfig {
    MemConfig {
        l1: CacheGeometry::new(256, 2),   // 4 lines: heavy eviction
        l2: CacheGeometry::new(512, 2),   // 8 lines
        llc: CacheGeometry::new(1024, 2), // 16 lines
        ..MemConfig::scaled()
    }
}

proptest! {
    /// Soundness of reveal state: a word may only be observed revealed
    /// if it was revealed at some point after its last write. (Losing
    /// reveals is always allowed; resurrecting concealed words never.)
    #[test]
    fn no_word_is_revealed_without_a_reveal_after_its_last_write(
        ops in proptest::collection::vec(op(), 1..300),
    ) {
        let mut m = MemorySystem::new(3, tiny_config(), ReconConfig::default());
        // Reference: per word, was there a reveal() since the last
        // write (by anyone)? Writes conceal globally and coherently.
        let mut may_be_revealed = std::collections::HashMap::<u64, bool>::new();
        for op in ops {
            match op {
                Op::Read { core, addr } => {
                    let r = m.read(core, addr);
                    if r.revealed {
                        prop_assert!(
                            may_be_revealed.get(&addr).copied().unwrap_or(false),
                            "{addr:#x} observed revealed with no prior reveal"
                        );
                    }
                }
                Op::Write { core, addr } => {
                    m.write(core, addr);
                    may_be_revealed.insert(addr, false);
                }
                Op::Reveal { core, addr } => {
                    if m.reveal(core, addr) {
                        may_be_revealed.insert(addr, true);
                    }
                }
                Op::Rmw { core, addr } => {
                    let r = m.rmw(core, addr);
                    if r.revealed {
                        prop_assert!(
                            may_be_revealed.get(&addr).copied().unwrap_or(false),
                            "{addr:#x} rmw-observed revealed with no prior reveal"
                        );
                    }
                    may_be_revealed.insert(addr, false);
                }
            }
        }
    }

    /// Coherence single-writer invariant: after any operation sequence,
    /// at most one core holds a line writable, and if one does, no other
    /// core holds it at all.
    #[test]
    fn single_writer_invariant(ops in proptest::collection::vec(op(), 1..300)) {
        let mut m = MemorySystem::new(3, tiny_config(), ReconConfig::default());
        for op in ops {
            match op {
                Op::Read { core, addr } => { m.read(core, addr); }
                Op::Write { core, addr } => { m.write(core, addr); }
                Op::Reveal { core, addr } => { m.reveal(core, addr); }
                Op::Rmw { core, addr } => { m.rmw(core, addr); }
            }
            for line in 0..8u64 {
                let addr = line * 64;
                let states: Vec<Option<Mesi>> =
                    (0..3).map(|c| m.l1_state(c, addr).max(m.l2_state(c, addr))).collect();
                let writers = states.iter().flatten().filter(|s| s.writable()).count();
                prop_assert!(writers <= 1, "line {line}: multiple writers {states:?}");
                if writers == 1 {
                    let holders = states.iter().flatten().count();
                    prop_assert_eq!(
                        holders, 1,
                        "line {}: writer coexists with sharers {:?}", line, states
                    );
                }
            }
        }
    }

    /// Disabled ReCon never reports a revealed word, whatever happens.
    #[test]
    fn disabled_recon_reveals_nothing(ops in proptest::collection::vec(op(), 1..200)) {
        let mut m = MemorySystem::new(2, tiny_config(), ReconConfig::disabled());
        for op in ops {
            match op {
                Op::Read { core, addr } => {
                    prop_assert!(!m.read(core % 2, addr).revealed);
                }
                Op::Write { core, addr } => { m.write(core % 2, addr); }
                Op::Reveal { core, addr } => {
                    prop_assert!(!m.reveal(core % 2, addr));
                }
                Op::Rmw { core, addr } => {
                    prop_assert!(!m.rmw(core % 2, addr).revealed);
                }
            }
        }
    }
}

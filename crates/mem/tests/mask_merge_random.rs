//! Ungated randomized property tests of the MESI reveal-mask OR-merge
//! rules on eviction and invalidation (§5.3). Unlike `proptests.rs`
//! (which needs the crates-io `proptest` crate and is off by default),
//! these run in every `cargo test`: the interleavings are driven by the
//! repo's own `SplitMix64`, so failures replay from a printed seed.

use recon::ReconConfig;
use recon_isa::rng::{Rng as _, SplitMix64};
use recon_mem::{CacheGeometry, MemConfig, MemorySystem};

const WORDS_PER_LINE: u64 = 8;
const WORD_BYTES: u64 = 8;
const LINE_BYTES: u64 = WORDS_PER_LINE * WORD_BYTES;

/// Tiny hierarchy: 4 L1 lines / 8 L2 lines / 16 LLC lines, so a small
/// address pool forces constant eviction and invalidation traffic.
fn tiny_config() -> MemConfig {
    MemConfig {
        l1: CacheGeometry::new(256, 2),
        l2: CacheGeometry::new(512, 2),
        llc: CacheGeometry::new(1024, 2),
        ..MemConfig::scaled()
    }
}

fn word_addr(line: u64, word: u64) -> u64 {
    line * LINE_BYTES + word * WORD_BYTES
}

/// Soundness under arbitrary interleavings: a word may only ever be
/// observed revealed if some core revealed it after its last write —
/// the OR-merge on eviction may *lose* bits, never invent them. The
/// invariant auditor must also stay silent throughout (its false
/// positives would abort real audited runs).
#[test]
fn random_interleavings_never_resurrect_a_concealed_word() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(0x5eed_0000 + seed);
        let mut m = MemorySystem::new(3, tiny_config(), ReconConfig::default());
        // Reference model: per word, was there a successful reveal since
        // the last (coherent, global) write?
        let mut may_be_revealed = std::collections::HashMap::<u64, bool>::new();
        for step in 0..400 {
            let core = (rng.next_u64() % 3) as usize;
            let addr = word_addr(rng.next_u64() % 8, rng.next_u64() % WORDS_PER_LINE);
            match rng.next_u64() % 4 {
                0 => {
                    let r = m.read(core, addr);
                    assert!(
                        !r.revealed || may_be_revealed.get(&addr).copied().unwrap_or(false),
                        "seed {seed} step {step}: {addr:#x} read revealed with no prior reveal"
                    );
                }
                1 => {
                    m.write(core, addr);
                    may_be_revealed.insert(addr, false);
                }
                2 => {
                    if m.reveal(core, addr) {
                        may_be_revealed.insert(addr, true);
                    }
                }
                _ => {
                    let r = m.rmw(core, addr);
                    assert!(
                        !r.revealed || may_be_revealed.get(&addr).copied().unwrap_or(false),
                        "seed {seed} step {step}: {addr:#x} rmw revealed with no prior reveal"
                    );
                    may_be_revealed.insert(addr, false);
                }
            }
            if step % 16 == 0 {
                let violations = m.audit();
                assert!(
                    violations.is_empty(),
                    "seed {seed} step {step}: audit false positive: {violations:?}"
                );
            }
        }
    }
}

/// OR-merge liveness on reader eviction: with full level coverage, a
/// revealed word survives being bounced out of the L1 by conflicting
/// *reads* — the evicted mask is OR-merged into the L2 copy, and from
/// there into the directory, never silently dropped.
#[test]
fn reader_eviction_or_merges_reveal_bits_downward() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(0xface_0000 + seed);
        let mut m = MemorySystem::new(1, tiny_config(), ReconConfig::default());

        let line = rng.next_u64() % 4;
        let word = rng.next_u64() % WORDS_PER_LINE;
        let addr = word_addr(line, word);
        m.read(0, addr);
        assert!(m.reveal(0, addr), "seed {seed}: reveal into resident line");
        assert!(m.probe_revealed(0, addr));

        // Thrash the L1 (4 lines) with reads to other lines mapping
        // across the sets; the revealed line is eventually evicted. No
        // write touches the revealed word, so losing its bit would be an
        // OR-merge bug, not a conceal.
        for _ in 0..24 {
            let other = 4 + rng.next_u64() % 8; // lines 4..12: same sets, different tags
            if other % 4 != line % 4 && rng.next_u64().is_multiple_of(2) {
                continue; // bias toward the revealed line's set
            }
            m.read(0, word_addr(other, rng.next_u64() % WORDS_PER_LINE));
        }
        assert!(
            m.probe_revealed(0, addr),
            "seed {seed}: reveal bit for line {line} word {word} lost on reader eviction"
        );
        let violations = m.audit();
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}

/// Ownership transfer on invalidation (§5.3 case iii): when another
/// core takes the line Modified, the old owner's mask travels with the
/// data — the new writer's conceal hits only its own word, and every
/// other revealed word in the line stays revealed.
#[test]
fn invalidation_transfers_the_owners_mask_to_the_new_writer() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(0xbeef_0000 + seed);
        let mut m = MemorySystem::new(2, tiny_config(), ReconConfig::default());

        let line = rng.next_u64() % 8;
        let revealed_word = rng.next_u64() % WORDS_PER_LINE;
        let written_word =
            (revealed_word + 1 + rng.next_u64() % (WORDS_PER_LINE - 1)) % WORDS_PER_LINE;
        assert_ne!(revealed_word, written_word);

        // Core 0 owns the line and reveals one word.
        let raddr = word_addr(line, revealed_word);
        m.write(0, word_addr(line, written_word));
        assert!(m.reveal(0, raddr), "seed {seed}: reveal into owned line");

        // Core 1 steals the line with a write to a *different* word.
        m.write(1, word_addr(line, written_word));

        // The old owner's reveal bit traveled with the invalidation.
        assert!(
            m.probe_revealed(1, raddr),
            "seed {seed}: reveal bit for word {revealed_word} lost on ownership transfer"
        );
        assert!(!m.probe_revealed(1, word_addr(line, written_word)));
        let r = m.read(1, raddr);
        assert!(
            r.revealed,
            "seed {seed}: new owner reads word {revealed_word} concealed after transfer"
        );
        let violations = m.audit();
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}

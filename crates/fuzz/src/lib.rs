//! # recon-fuzz
//!
//! A seeded differential torture harness for the ReCon reproduction:
//! generates random-but-valid programs over the full ISA ([`gen`]),
//! runs five oracles per program ([`oracle`]), and shrinks any failure
//! to a minimal `.asm` repro ([`mod@shrink`]).
//!
//! Everything is deterministic per seed: the same `(seed, count)` pair
//! explores the same programs in the same order, whatever the worker
//! count — results are keyed by program index, not by completion order.
//!
//! ```no_run
//! use recon_fuzz::{run_fuzz, FuzzConfig};
//!
//! let report = run_fuzz(&FuzzConfig {
//!     seed: 42,
//!     count: 200,
//!     ..FuzzConfig::default()
//! });
//! assert!(report.failures.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gen;
pub mod oracle;
pub mod shrink;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use recon_asm::{disassemble, AsmProgram, EntrySpec};
use recon_isa::rng::SplitMix64;
use recon_isa::Program;

pub use gen::{generate, GenParams};
pub use oracle::{check, Failure, OracleConfig};
pub use shrink::{shrink, SHRINK_PHASE_DEADLINE};

/// Locks a mutex, ignoring poisoning: the guarded state (a result
/// vector of plain data) stays valid even if another worker panicked
/// mid-push, and the fuzz loop must keep collecting.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Fuzz campaign configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed; program `i` is generated from a stream derived from
    /// `(seed, i)`.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub count: usize,
    /// Quick mode: smaller programs and no snapshot/restore oracle.
    pub quick: bool,
    /// Worker threads (0 = one per available CPU).
    pub jobs: usize,
    /// Directory to write shrunk `.asm` repros into (none = don't).
    pub out_dir: Option<PathBuf>,
    /// Oracle knobs (core config, watchdog window, snapshot cadence).
    pub oracle: OracleConfig,
    /// Generator knobs.
    pub gen: GenParams,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            count: 100,
            quick: false,
            jobs: 0,
            out_dir: None,
            oracle: OracleConfig::default(),
            gen: GenParams::default(),
        }
    }
}

/// One confirmed oracle failure, shrunk.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Index of the failing program within the campaign.
    pub index: usize,
    /// Failure class (stable across shrinking).
    pub kind: String,
    /// Human-readable detail from the *shrunk* reproduction.
    pub detail: String,
    /// Static instructions in the original program.
    pub original_len: usize,
    /// Static instructions after shrinking.
    pub shrunk_len: usize,
    /// Whether the shrinker hit a per-phase wall-clock deadline; the
    /// repro is still valid, just possibly not minimal.
    pub shrink_timed_out: bool,
    /// The shrunk program.
    pub program: Program,
    /// Where the `.asm` repro was written, if an out dir was set.
    pub repro_path: Option<PathBuf>,
}

/// Campaign summary.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Master seed the campaign ran with.
    pub seed: u64,
    /// Programs generated and checked.
    pub count: usize,
    /// Confirmed failures, sorted by program index.
    pub failures: Vec<FuzzFailure>,
    /// Wall-clock seconds for the whole campaign.
    pub elapsed_secs: f64,
    /// Throughput: programs fully checked per second.
    pub programs_per_sec: f64,
}

impl FuzzReport {
    /// Renders the report as a JSON object (hand-rolled; the build is
    /// dependency-free), the `BENCH_fuzz.json` format.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"seed\": {},\n  \"programs\": {},\n  \"failures\": {},\n  \
             \"shrink_timed_out\": {},\n  \
             \"elapsed_secs\": {:.3},\n  \"programs_per_sec\": {:.1},\n  \"failure_kinds\": [",
            self.seed,
            self.count,
            self.failures.len(),
            self.failures.iter().filter(|f| f.shrink_timed_out).count(),
            self.elapsed_secs,
            self.programs_per_sec
        );
        for (i, f) in self.failures.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(s, "{sep}\"{}\"", f.kind);
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Derives the per-program generator stream: program `i` of a campaign
/// sees an independent, reproducible stream whatever `jobs` is.
#[must_use]
pub fn program_rng(seed: u64, index: usize) -> SplitMix64 {
    SplitMix64::new(seed.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Renders a shrunk failure as a commented, re-assemblable `.asm` file.
#[must_use]
pub fn render_repro(failure: &FuzzFailure, seed: u64) -> String {
    let asm = AsmProgram {
        program: failure.program.clone(),
        entries: vec![EntrySpec {
            entry: failure.program.entry,
            seeds: vec![],
        }],
        labels: vec![],
    };
    let mut out = String::new();
    let _ = writeln!(out, "; recon fuzz repro");
    let _ = writeln!(out, "; seed {seed}, program index {}", failure.index);
    let _ = writeln!(out, "; oracle: {}", failure.kind);
    for line in failure.detail.lines() {
        let _ = writeln!(out, ";   {line}");
    }
    let _ = writeln!(
        out,
        "; shrunk {} -> {} instructions",
        failure.original_len, failure.shrunk_len
    );
    out.push_str(&disassemble(&asm));
    out
}

fn write_repro(dir: &Path, failure: &FuzzFailure, seed: u64) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("repro-{seed}-{:05}.asm", failure.index));
    std::fs::write(&path, render_repro(failure, seed)).ok()?;
    Some(path)
}

/// Checks one program of a campaign; shrinks and describes any failure.
fn check_one(cfg: &FuzzConfig, index: usize) -> Option<FuzzFailure> {
    let mut rng = program_rng(cfg.seed, index);
    let program = gen::generate(&mut rng, &cfg.gen);
    let failure = check(&program, &cfg.oracle).err()?;
    let original_len = program.code.len();
    let (shrunk, final_failure, shrink_timed_out) = shrink(&program, &failure, &cfg.oracle);
    Some(FuzzFailure {
        index,
        kind: final_failure.kind().to_string(),
        detail: final_failure.detail(),
        original_len,
        shrunk_len: shrunk.code.len(),
        shrink_timed_out,
        program: shrunk,
        repro_path: None,
    })
}

/// Runs a fuzz campaign: `count` programs from `seed`, each through all
/// five oracles, with failures shrunk and (optionally) written as
/// `.asm` repros.
#[must_use]
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut cfg = cfg.clone();
    if cfg.quick {
        cfg.oracle.skip_snapshot = true;
        cfg.gen.blocks = cfg.gen.blocks.min(12);
    }
    let jobs = if cfg.jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        cfg.jobs
    };

    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let failures: Mutex<Vec<FuzzFailure>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(cfg.count.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cfg.count {
                    break;
                }
                if let Some(f) = check_one(&cfg, i) {
                    lock_ignore_poison(&failures).push(f);
                }
            });
        }
    });
    let mut failures = failures.into_inner().unwrap_or_else(|p| p.into_inner());
    failures.sort_by_key(|f| f.index);
    if let Some(dir) = &cfg.out_dir {
        for f in &mut failures {
            f.repro_path = write_repro(dir, f, cfg.seed);
        }
    }

    let elapsed = start.elapsed().as_secs_f64();
    FuzzReport {
        seed: cfg.seed,
        count: cfg.count,
        failures,
        elapsed_secs: elapsed,
        programs_per_sec: if elapsed > 0.0 {
            cfg.count as f64 / elapsed
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_on_trunk_is_clean() {
        let report = run_fuzz(&FuzzConfig {
            seed: 42,
            count: 8,
            quick: true,
            ..FuzzConfig::default()
        });
        assert!(
            report.failures.is_empty(),
            "trunk must be clean: {:?}",
            report
                .failures
                .iter()
                .map(|f| (&f.kind, &f.detail))
                .collect::<Vec<_>>()
        );
        assert_eq!(report.count, 8);
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let one = run_fuzz(&FuzzConfig {
            seed: 7,
            count: 6,
            quick: true,
            jobs: 1,
            ..FuzzConfig::default()
        });
        let four = run_fuzz(&FuzzConfig {
            seed: 7,
            count: 6,
            quick: true,
            jobs: 4,
            ..FuzzConfig::default()
        });
        assert_eq!(one.failures.len(), four.failures.len());
    }

    #[test]
    fn repro_files_reassemble() {
        // A synthetic failure (any program) must render to valid,
        // re-assemblable text via the PR 8 disassembler.
        let program = generate(&mut program_rng(3, 0), &GenParams::default());
        let failure = FuzzFailure {
            index: 0,
            kind: "stall".into(),
            detail: "synthetic".into(),
            original_len: program.code.len(),
            shrunk_len: program.code.len(),
            shrink_timed_out: false,
            program,
            repro_path: None,
        };
        let text = render_repro(&failure, 3);
        let back = recon_asm::assemble(&text).expect("repro must re-assemble");
        assert_eq!(back.program.code, failure.program.code);
    }

    #[test]
    fn json_report_shape() {
        let report = FuzzReport {
            seed: 1,
            count: 10,
            failures: vec![],
            elapsed_secs: 2.0,
            programs_per_sec: 5.0,
        };
        let json = report.to_json();
        assert!(json.contains("\"programs\": 10"));
        assert!(json.contains("\"failures\": 0"));
        assert!(json.contains("\"shrink_timed_out\": 0"));
    }
}

//! Random-but-valid program generation.
//!
//! Every generated program is *structurally valid* ([`Program::validate`]
//! passes) and *guaranteed to terminate* under functional execution:
//!
//! * memory addresses are always 8-byte aligned — bases come from a
//!   curated set of pointer registers that only ever hold aligned
//!   addresses, offsets are aligned, and `ldx` indices are pre-masked;
//! * control flow is forward-only between *block boundaries*, plus
//!   counted loops whose trip-count register is written by no other
//!   instruction — a forward branch can never land inside a loop body,
//!   so every back-edge retires a bounded number of times;
//! * the program ends in a corpus-style self-check epilogue: a digest
//!   of the scratch registers and the whole data region is folded,
//!   stored to [`recon_asm::corpus::DIGEST_ADDR`], compared against the
//!   functionally-computed expectation, and
//!   [`recon_asm::corpus::STATUS_PASS`]/[`STATUS_FAIL`] is stored to
//!   [`recon_asm::corpus::STATUS_ADDR`].
//!
//! The memory layout puts the read-only pointer table *below* the data
//! region and the digest/status words far above it, so stores (whose
//! bases point into the data region and whose offsets are non-negative)
//! can alias each other freely but can never corrupt the table or the
//! epilogue's result words.

use recon_asm::corpus::{DIGEST_ADDR, STATUS_ADDR, STATUS_FAIL, STATUS_PASS};
use recon_isa::reg::names;
use recon_isa::rng::Rng;
use recon_isa::{AluKind, ArchReg, BranchKind, Inst, MemImage, Program};

/// Base of the read-only pointer table (aligned addresses into the data
/// region; never the target of a generated store).
pub const TABLE_BASE: u64 = 0x1000;
/// Words in the pointer table.
pub const TABLE_WORDS: u64 = 16;
/// Base of the read-write data region all generated stores land in.
pub const DATA_BASE: u64 = 0x2000;
/// Words in the data region (the digest epilogue folds all of them).
pub const DATA_WORDS: u64 = 32;

/// r1: immutable base of the data region.
const RD: ArchReg = names::R1;
/// r2: immutable base of the pointer table.
const RT: ArchReg = names::R2;
/// r3..r6: pointer registers — always hold aligned data-region addresses.
const PTR_REGS: [u8; 4] = [3, 4, 5, 6];
/// r7: counted-loop trip register; written only by loop scaffolding.
const RLOOP: ArchReg = names::R7;
/// r8..r15: scratch value registers (arbitrary 64-bit contents).
const SCRATCH_REGS: [u8; 8] = [8, 9, 10, 11, 12, 13, 14, 15];
/// r16..r22: epilogue-only registers (digest accumulator, temps).
const RDIGEST: ArchReg = names::R16;
const RTMP: ArchReg = names::R17;
const RMIX: ArchReg = names::R18;
const RADDR: ArchReg = names::R19;
const REXPECT: ArchReg = names::R20;
const RSTATUS: ArchReg = names::R21;

/// Generation parameters. `blocks` controls program size; the defaults
/// give programs of roughly 60–120 static instructions after the
/// epilogue.
#[derive(Clone, Copy, Debug)]
pub struct GenParams {
    /// Number of body blocks (each block is 1–5 instructions).
    pub blocks: usize,
    /// Maximum trip count of a counted loop.
    pub max_trip: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            blocks: 24,
            max_trip: 4,
        }
    }
}

fn ptr(rng: &mut impl Rng) -> ArchReg {
    ArchReg::new(usize::from(PTR_REGS[rng.below_usize(PTR_REGS.len())]))
}

fn scratch(rng: &mut impl Rng) -> ArchReg {
    ArchReg::new(usize::from(
        SCRATCH_REGS[rng.below_usize(SCRATCH_REGS.len())],
    ))
}

fn aligned_off(rng: &mut impl Rng) -> i64 {
    8 * rng.below(8) as i64
}

/// One generated block: its instructions, with any *forward* branch
/// recorded as `(position within block, target block index)` to be
/// patched after layout.
struct Block {
    code: Vec<Inst>,
    fwd: Option<(usize, usize)>,
}

fn value_inst(rng: &mut impl Rng) -> Inst {
    match rng.below(4) {
        0 => Inst::LoadImm {
            dst: scratch(rng),
            imm: rng.next_u64() >> (rng.below(56) as u32),
        },
        1 => Inst::Alu {
            kind: AluKind::ALL[rng.below_usize(AluKind::ALL.len())],
            dst: scratch(rng),
            a: scratch(rng),
            b: scratch(rng),
        },
        2 => Inst::AluImm {
            kind: AluKind::ALL[rng.below_usize(AluKind::ALL.len())],
            dst: scratch(rng),
            a: scratch(rng),
            imm: rng.next_u64() & 0xFFFF,
        },
        _ => Inst::Load {
            dst: scratch(rng),
            base: ptr(rng),
            offset: aligned_off(rng),
        },
    }
}

fn gen_block(rng: &mut impl Rng, index: usize, total: usize, params: &GenParams) -> Block {
    match rng.below(10) {
        // Plain value computation.
        0..=2 => Block {
            code: vec![value_inst(rng)],
            fwd: None,
        },
        // Store: aliasing writes into the data region.
        3 | 4 => Block {
            code: vec![Inst::Store {
                val: scratch(rng),
                base: ptr(rng),
                offset: aligned_off(rng),
            }],
            fwd: None,
        },
        // Atomic fetch-add (serializing; drains the store buffer).
        5 => Block {
            code: vec![Inst::AmoAdd {
                dst: scratch(rng),
                base: ptr(rng),
                offset: aligned_off(rng),
                add: scratch(rng),
            }],
            fwd: None,
        },
        // Pointer reload: chase through the read-only table. The loaded
        // value is an aligned data-region address by construction.
        6 => Block {
            code: vec![Inst::Load {
                dst: ptr(rng),
                base: RT,
                offset: 8 * rng.below(TABLE_WORDS) as i64,
            }],
            fwd: None,
        },
        // Masked indexed load: `ldx` with both address sources live.
        7 => {
            let idx = scratch(rng);
            Block {
                code: vec![
                    Inst::AluImm {
                        kind: AluKind::And,
                        dst: idx,
                        a: scratch(rng),
                        imm: DATA_WORDS - 1,
                    },
                    Inst::LoadIdx {
                        dst: scratch(rng),
                        base: RD,
                        index: idx,
                    },
                ],
                fwd: None,
            }
        }
        // Forward conditional branch to a later block boundary.
        8 => {
            let span = (total - index) as u64; // >= 1; target block in (index, total]
            let target = index + 1 + rng.below(span.min(6)) as usize;
            Block {
                code: vec![Inst::Branch {
                    kind: BranchKind::ALL[rng.below_usize(BranchKind::ALL.len())],
                    a: scratch(rng),
                    b: scratch(rng),
                    target: 0, // patched after layout
                }],
                fwd: Some((0, target)),
            }
        }
        // Counted loop: trips bounded by `max_trip`, body writes only
        // scratch/pointer state, the trip register is private.
        _ => {
            let trips = 1 + rng.below(params.max_trip);
            let mut code = vec![Inst::LoadImm {
                dst: RLOOP,
                imm: trips,
            }];
            let body_len = 1 + rng.below_usize(3);
            for _ in 0..body_len {
                code.push(value_inst(rng));
            }
            if rng.below(2) == 0 {
                code.push(Inst::Store {
                    val: scratch(rng),
                    base: ptr(rng),
                    offset: aligned_off(rng),
                });
            }
            code.push(Inst::AluImm {
                kind: AluKind::Sub,
                dst: RLOOP,
                a: RLOOP,
                imm: 1,
            });
            // Back-edge to the first body instruction (intra-block, so a
            // forward branch can never land past the `li` initializer).
            code.push(Inst::Branch {
                kind: BranchKind::Ne,
                a: RLOOP,
                b: names::R0,
                target: usize::MAX, // patched during flatten (block-local)
            });
            Block { code, fwd: None }
        }
    }
}

/// Generates the program *body* (prologue + blocks + digest fold +
/// digest store + halt), without the self-check comparison.
fn gen_body(rng: &mut impl Rng, params: &GenParams) -> Program {
    let total = params.blocks.max(1);
    let mut blocks = Vec::with_capacity(total);
    for i in 0..total {
        blocks.push(gen_block(rng, i, total, params));
    }

    // Prologue: seed the immutable bases, pointers, and scratch regs.
    let mut code = vec![
        Inst::LoadImm {
            dst: RD,
            imm: DATA_BASE,
        },
        Inst::LoadImm {
            dst: RT,
            imm: TABLE_BASE,
        },
    ];
    for &p in &PTR_REGS {
        code.push(Inst::LoadImm {
            dst: ArchReg::new(usize::from(p)),
            imm: DATA_BASE + 8 * rng.below(DATA_WORDS),
        });
    }
    for &s in &SCRATCH_REGS {
        code.push(Inst::LoadImm {
            dst: ArchReg::new(usize::from(s)),
            imm: rng.next_u64(),
        });
    }

    // Layout: record each block's start index, flatten, patch targets.
    let mut starts = Vec::with_capacity(total + 1);
    let mut at = code.len();
    for b in &blocks {
        starts.push(at);
        at += b.code.len();
    }
    starts.push(at); // epilogue boundary: a forward branch may exit the body
    for b in blocks {
        let base = code.len();
        let body_start = base + 1; // loops: first instruction after the `li`
        code.extend(b.code);
        // Patch the block-local back-edge (if any), then the forward edge.
        for inst in &mut code[base..] {
            if let Inst::Branch { target, .. } = inst {
                if *target == usize::MAX {
                    *target = body_start;
                }
            }
        }
        if let Some((pos, target_block)) = b.fwd {
            if let Inst::Branch { target, .. } = &mut code[base + pos] {
                *target = starts[target_block];
            }
        }
    }

    // Digest fold: mix every scratch/pointer register and every data
    // word into RDIGEST, store it, halt.
    code.push(Inst::LoadImm {
        dst: RDIGEST,
        imm: 0,
    });
    code.push(Inst::LoadImm {
        dst: RMIX,
        imm: 0x9E37_79B9_7F4A_7C15,
    });
    for r in PTR_REGS.iter().chain(SCRATCH_REGS.iter()) {
        code.push(Inst::Alu {
            kind: AluKind::Xor,
            dst: RDIGEST,
            a: RDIGEST,
            b: ArchReg::new(usize::from(*r)),
        });
        code.push(Inst::Alu {
            kind: AluKind::Mul,
            dst: RDIGEST,
            a: RDIGEST,
            b: RMIX,
        });
    }
    for k in 0..DATA_WORDS {
        code.push(Inst::Load {
            dst: RTMP,
            base: RD,
            offset: 8 * k as i64,
        });
        code.push(Inst::Alu {
            kind: AluKind::Xor,
            dst: RDIGEST,
            a: RDIGEST,
            b: RTMP,
        });
        code.push(Inst::Alu {
            kind: AluKind::Mul,
            dst: RDIGEST,
            a: RDIGEST,
            b: RMIX,
        });
    }
    code.push(Inst::LoadImm {
        dst: RADDR,
        imm: DIGEST_ADDR,
    });
    code.push(Inst::Store {
        val: RDIGEST,
        base: RADDR,
        offset: 0,
    });
    code.push(Inst::Halt);

    // Image: pointer table entries are aligned data addresses; a random
    // subset of data words is pre-initialized.
    let mut image = MemImage::new();
    for k in 0..TABLE_WORDS {
        image.set(TABLE_BASE + 8 * k, DATA_BASE + 8 * rng.below(DATA_WORDS));
    }
    for k in 0..DATA_WORDS {
        if rng.below(2) == 0 {
            image.set(DATA_BASE + 8 * k, rng.next_u64());
        }
    }

    Program {
        code,
        entry: 0,
        image,
    }
}

/// Generates a complete self-checking program from `rng`.
///
/// The returned program validates, terminates functionally within
/// [`crate::oracle::MAX_FUNC_STEPS`] steps, and ends with the corpus
/// self-check convention: digest at `DIGEST_ADDR`, pass/fail status at
/// `STATUS_ADDR`.
///
/// # Panics
///
/// Panics if the generator produced a structurally invalid program —
/// that is a bug in this module, not in the caller.
#[must_use]
pub fn generate(rng: &mut impl Rng, params: &GenParams) -> Program {
    let mut program = gen_body(rng, params);
    program
        .validate()
        .expect("generated body must be structurally valid");

    // Compute the expected digest functionally, then replace the
    // trailing halt with the corpus self-check.
    let expected = expected_digest(&program);
    let halt_at = program.code.len() - 1;
    debug_assert!(matches!(program.code[halt_at], Inst::Halt));
    program.code.truncate(halt_at);
    let i0 = program.code.len();
    program.code.extend([
        Inst::LoadImm {
            dst: REXPECT,
            imm: expected,
        },
        // i0+1: beq digest, expect -> pass (i0+4)
        Inst::Branch {
            kind: BranchKind::Eq,
            a: RDIGEST,
            b: REXPECT,
            target: i0 + 4,
        },
        Inst::LoadImm {
            dst: RSTATUS,
            imm: STATUS_FAIL,
        },
        // i0+3: jump to the status store (i0+5)
        Inst::Jump { target: i0 + 5 },
        Inst::LoadImm {
            dst: RSTATUS,
            imm: STATUS_PASS,
        },
        Inst::LoadImm {
            dst: RADDR,
            imm: STATUS_ADDR,
        },
        Inst::Store {
            val: RSTATUS,
            base: RADDR,
            offset: 0,
        },
        Inst::Halt,
    ]);
    program
        .validate()
        .expect("self-check epilogue must keep the program valid");
    program
}

/// Functionally executes `program` and returns the digest register's
/// final value (the word the body stores to `DIGEST_ADDR`).
fn expected_digest(program: &Program) -> u64 {
    let mut mem = recon_isa::SparseMem::from_image(&program.image);
    let mut state = recon_isa::ArchState::at_entry(program);
    for _ in 0..crate::oracle::MAX_FUNC_STEPS {
        if state.halted {
            break;
        }
        recon_isa::exec::step(program, &mut state, &mut mem)
            .expect("generated body must execute cleanly");
    }
    assert!(state.halted, "generated body must terminate");
    state.read(RDIGEST)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::rng::SplitMix64;
    use recon_isa::SparseMem;

    #[test]
    fn generated_programs_validate_and_self_check() {
        for seed in 0..32 {
            let mut rng = SplitMix64::new(seed);
            let p = generate(&mut rng, &GenParams::default());
            p.validate().unwrap();
            let mut mem = SparseMem::from_image(&p.image);
            let (_, halted) =
                recon_isa::run_with_status(&p, &mut mem, crate::oracle::MAX_FUNC_STEPS, |_| {})
                    .unwrap();
            assert!(halted, "seed {seed} must terminate");
            assert_eq!(
                mem.peek(STATUS_ADDR),
                STATUS_PASS,
                "seed {seed} must self-check"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&mut SplitMix64::new(7), &GenParams::default());
        let b = generate(&mut SplitMix64::new(7), &GenParams::default());
        assert_eq!(a, b);
        let c = generate(&mut SplitMix64::new(8), &GenParams::default());
        assert_ne!(a, c);
    }

    #[test]
    fn stores_stay_inside_the_data_region() {
        // All store bases are pointer registers (data-region addresses)
        // with non-negative offsets; spot-check by running and asserting
        // no write below DATA_BASE or into the status words from the body.
        let mut rng = SplitMix64::new(99);
        let p = generate(&mut rng, &GenParams::default());
        let mut mem = SparseMem::from_image(&p.image);
        recon_isa::run_with_status(&p, &mut mem, crate::oracle::MAX_FUNC_STEPS, |rec| {
            if let recon_isa::MemEffect::Store { addr, .. } = rec.mem {
                assert!(
                    addr >= DATA_BASE || addr == DIGEST_ADDR || addr == STATUS_ADDR,
                    "store to {addr:#x} escaped the data region"
                );
            }
        })
        .unwrap();
    }
}

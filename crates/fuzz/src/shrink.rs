//! Automatic test-case reduction.
//!
//! Given a failing program and the oracle that rejected it, the
//! shrinker searches for a smaller program that still fails *in the
//! same class* (`Failure::kind`), in three phases:
//!
//! 1. **Truncation** — binary-search the shortest prefix (plus a
//!    `halt`) that still reproduces;
//! 2. **Nop-out** — replace each instruction with `nop` while the
//!    failure reproduces, iterated to a fixed point;
//! 3. **Compaction** — delete the `nop`s, remapping branch targets.
//!
//! Every accepted candidate is validated first, so the shrinker can
//! never escalate an oracle failure into a malformed program.

use std::time::{Duration, Instant};

use recon_isa::{Inst, Program};

use crate::oracle::{check, Failure, OracleConfig};

/// Upper bound on oracle evaluations during one shrink, so a slow
/// reproducer cannot stall the fuzz loop indefinitely.
const MAX_ATTEMPTS: usize = 400;

/// Wall-clock budget per shrink *phase*. Attempt counting alone is a
/// poor bound — a pathological reproducer can burn seconds per oracle
/// evaluation — so each phase also carries a deadline; crossing it
/// abandons the remaining candidates of that phase and marks the
/// result as timed out.
pub const SHRINK_PHASE_DEADLINE: Duration = Duration::from_secs(10);

struct Shrinker<'a> {
    cfg: &'a OracleConfig,
    kind: &'static str,
    attempts: usize,
    deadline: Instant,
    timed_out: bool,
}

impl Shrinker<'_> {
    /// Arms the wall-clock deadline for the next phase.
    fn start_phase(&mut self) {
        self.deadline = Instant::now() + SHRINK_PHASE_DEADLINE;
    }

    /// Whether `candidate` is valid and still fails in the same class.
    fn reproduces(&mut self, candidate: &Program) -> bool {
        if Instant::now() >= self.deadline {
            self.timed_out = true;
            return false;
        }
        if self.attempts >= MAX_ATTEMPTS || candidate.validate().is_err() {
            return false;
        }
        self.attempts += 1;
        matches!(check(candidate, self.cfg), Err(f) if f.kind() == self.kind)
    }
}

fn truncate_to(program: &Program, len: usize) -> Program {
    let mut p = program.clone();
    p.code.truncate(len);
    // Branches past the cut retarget the trailing halt.
    let halt_at = p.code.len();
    for inst in &mut p.code {
        if let Inst::Branch { target, .. } | Inst::Jump { target } = inst {
            if *target > halt_at {
                *target = halt_at;
            }
        }
    }
    p.code.push(Inst::Halt);
    p
}

/// Deletes every `nop`, remapping branch/jump targets onto the next
/// surviving instruction.
fn compact(program: &Program) -> Program {
    let mut map = Vec::with_capacity(program.code.len() + 1);
    let mut kept = 0usize;
    for inst in &program.code {
        map.push(kept);
        if !matches!(inst, Inst::Nop) {
            kept += 1;
        }
    }
    map.push(kept); // targets one past the end clamp to the new end
    let code = program
        .code
        .iter()
        .filter(|i| !matches!(i, Inst::Nop))
        .map(|inst| match *inst {
            Inst::Branch { kind, a, b, target } => Inst::Branch {
                kind,
                a,
                b,
                target: map[target],
            },
            Inst::Jump { target } => Inst::Jump {
                target: map[target],
            },
            other => other,
        })
        .collect();
    Program {
        code,
        entry: map[program.entry],
        image: program.image.clone(),
    }
}

/// Shrinks `program` (which fails `check` with `failure`) to a smaller
/// program failing in the same class. Returns the reduced program, the
/// failure it still produces, and whether any phase hit its wall-clock
/// deadline ([`SHRINK_PHASE_DEADLINE`]) before exhausting its
/// candidates — a timed-out shrink is still a valid repro, just
/// possibly not minimal.
#[must_use]
pub fn shrink(
    program: &Program,
    failure: &Failure,
    cfg: &OracleConfig,
) -> (Program, Failure, bool) {
    let mut s = Shrinker {
        cfg,
        kind: failure.kind(),
        attempts: 0,
        deadline: Instant::now(),
        timed_out: false,
    };
    let mut best = program.clone();

    // Phase 1: prefix truncation, binary search on the cut length.
    s.start_phase();
    let mut lo = 0usize; // longest length known NOT to reproduce
    let mut hi = best.code.len(); // length known to reproduce (full program)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let candidate = truncate_to(&best, mid);
        if s.reproduces(&candidate) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    if hi < best.code.len() {
        best = truncate_to(&best, hi);
    }

    // Phase 2: nop-out to a fixed point.
    s.start_phase();
    loop {
        let mut changed = false;
        for i in 0..best.code.len() {
            if matches!(best.code[i], Inst::Nop | Inst::Halt) {
                continue;
            }
            let mut candidate = best.clone();
            candidate.code[i] = Inst::Nop;
            if s.reproduces(&candidate) {
                best = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 3: drop the nops (keep the compacted form only if it still
    // reproduces — target remapping around deleted code is delicate).
    s.start_phase();
    let compacted = compact(&best);
    if compacted.code.len() < best.code.len() && s.reproduces(&compacted) {
        best = compacted;
    }

    let final_failure = match check(&best, cfg) {
        Err(f) => f,
        Ok(()) => failure.clone(), // unreachable: every accepted step reproduced
    };
    (best, final_failure, s.timed_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams, DATA_BASE};
    use recon_cpu::CoreConfig;
    use recon_isa::reg::names::*;
    use recon_isa::rng::SplitMix64;

    #[test]
    fn compact_remaps_targets() {
        let p = Program {
            code: vec![
                Inst::Nop,
                Inst::Branch {
                    kind: recon_isa::BranchKind::Eq,
                    a: R0,
                    b: R0,
                    target: 3,
                },
                Inst::Nop,
                Inst::Halt,
            ],
            entry: 0,
            image: recon_isa::MemImage::new(),
        };
        let c = compact(&p);
        assert_eq!(c.code.len(), 2);
        assert!(matches!(c.code[0], Inst::Branch { target: 1, .. }));
        assert!(matches!(c.code[1], Inst::Halt));
        c.validate().unwrap();
    }

    #[test]
    fn shrinks_a_buggy_generated_program_to_a_tiny_stall_repro() {
        // Generate programs under the historical AMO gate until one
        // stalls, then shrink: the repro must stay a stall and get small.
        let cfg = OracleConfig {
            core: CoreConfig {
                amo_empty_sq_bug: true,
                ..CoreConfig::tiny()
            },
            watchdog_cycles: 5_000,
            skip_snapshot: true,
            ..OracleConfig::default()
        };
        let mut found = None;
        for seed in 0..64u64 {
            let p = generate(&mut SplitMix64::new(seed), &GenParams::default());
            if let Err(f) = check(&p, &cfg) {
                assert_eq!(f.kind(), "stall", "unexpected failure class: {f:?}");
                found = Some((p, f));
                break;
            }
        }
        let (p, f) = found.expect("some seed must trip the AMO gate");
        let before = p.code.len();
        let (small, sf, timed_out) = shrink(&p, &f, &cfg);
        assert_eq!(sf.kind(), "stall");
        assert!(
            !timed_out,
            "tiny repro must shrink well within the deadline"
        );
        assert!(
            small.code.len() <= 12,
            "shrunk to {} instructions (from {before})",
            small.code.len()
        );
        assert!(
            small.code.iter().any(|i| matches!(i, Inst::AmoAdd { .. })),
            "a stall repro must keep the amo"
        );
        let _ = DATA_BASE; // layout constants used by gen
    }
}

//! The five differential oracles `recon fuzz` runs per program.
//!
//! 1. **Functional vs detailed** — the detailed out-of-order simulator
//!    (baseline scheme) must produce the same architectural registers
//!    and memory words as straight-line functional execution.
//! 2. **Scheme invariance** — all five secure schemes are *performance*
//!    mechanisms: the architectural result must be identical across
//!    them.
//! 3. **Snapshot/restore** — restoring the first checkpoint of a run
//!    must reproduce the snapshot byte-for-byte, and the resumed run
//!    must finish with a result equal to the uninterrupted run's.
//! 4. **Watchdog-clean** — no detailed run may trip the liveness
//!    watchdog or exhaust its cycle budget.
//! 5. **Audit-clean** — every detailed run executes under the invariant
//!    auditor ([`recon_sim::audit`]); a sweep that finds the model's
//!    internal state inconsistent is a simulator bug, fuzzed for
//!    directly.

use recon::ReconConfig;
use recon_asm::corpus::{DIGEST_ADDR, STATUS_ADDR};
use recon_cpu::CoreConfig;
use recon_isa::{ArchReg, Program, SparseMem, NUM_ARCH_REGS};
use recon_mem::MemConfig;
use recon_secure::SecureConfig;
use recon_sim::{Budget, SimError, System};
use recon_workloads::Workload;

use crate::gen::{DATA_BASE, DATA_WORDS, TABLE_BASE, TABLE_WORDS};

/// Step bound for functional execution of a generated program; far
/// above what any generated program legitimately needs.
pub const MAX_FUNC_STEPS: usize = 200_000;

/// Cycle bound for one detailed run of a generated program.
pub const MAX_DETAILED_CYCLES: u64 = 2_000_000;

/// Which oracle a program failed, with a human-readable detail string.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Failure {
    /// Functional execution itself misbehaved (did not halt, or
    /// faulted) — a generator-invariant violation, still a finding.
    Functional(String),
    /// Oracle 1: detailed baseline diverged from functional execution.
    FunctionalMismatch(String),
    /// Oracle 2: a secure scheme's architectural result diverged from
    /// the baseline's.
    SchemeDivergence {
        /// Label of the diverging scheme.
        scheme: String,
        /// What diverged.
        detail: String,
    },
    /// Oracle 3: snapshot/restore was not transparent.
    SnapshotMismatch(String),
    /// Oracle 4: the liveness watchdog fired.
    Stalled {
        /// Scheme the stall occurred under.
        scheme: String,
        /// The stall report's one-line summary.
        summary: String,
    },
    /// Oracle 4: a detailed run exhausted its cycle budget without
    /// halting (runaway, but still committing — not a stall).
    Deadline {
        /// Scheme the deadline occurred under.
        scheme: String,
    },
    /// Oracle 5: an invariant-audit sweep found the simulator's
    /// internal state inconsistent mid-run.
    AuditViolation {
        /// Scheme the violation occurred under.
        scheme: String,
        /// The audit report's one-line summary.
        summary: String,
    },
}

impl Failure {
    /// A short stable label for the failure class (shrinking preserves
    /// the class, not the detail).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Failure::Functional(_) => "functional",
            Failure::FunctionalMismatch(_) => "functional-mismatch",
            Failure::SchemeDivergence { .. } => "scheme-divergence",
            Failure::SnapshotMismatch(_) => "snapshot-mismatch",
            Failure::Stalled { .. } => "stall",
            Failure::Deadline { .. } => "deadline",
            Failure::AuditViolation { .. } => "audit-violation",
        }
    }

    /// The detail text for reports and repro file headers.
    #[must_use]
    pub fn detail(&self) -> String {
        match self {
            Failure::Functional(d)
            | Failure::FunctionalMismatch(d)
            | Failure::SnapshotMismatch(d) => d.clone(),
            Failure::SchemeDivergence { scheme, detail } => format!("[{scheme}] {detail}"),
            Failure::Stalled { scheme, summary } => format!("[{scheme}] {summary}"),
            Failure::Deadline { scheme } => format!("[{scheme}] cycle budget exhausted"),
            Failure::AuditViolation { scheme, summary } => format!("[{scheme}] {summary}"),
        }
    }
}

/// Oracle knobs, shared by the fuzz loop and the shrinker.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Core configuration for detailed runs ([`CoreConfig::tiny`] by
    /// default: short queues surface structural hazards fastest).
    pub core: CoreConfig,
    /// Watchdog window for detailed runs. Generated programs commit
    /// steadily, so a small window keeps stall detection cheap.
    pub watchdog_cycles: u64,
    /// Checkpoint cadence (cycles) for the snapshot/restore oracle.
    pub snapshot_cadence: u64,
    /// Skip the (slower) snapshot/restore oracle.
    pub skip_snapshot: bool,
    /// Invariant-audit cadence for every detailed run (oracle 5).
    /// Generated programs are short, so a tight cadence is cheap.
    pub audit_every_cycles: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            core: CoreConfig::tiny(),
            watchdog_cycles: 20_000,
            snapshot_cadence: 400,
            skip_snapshot: false,
            audit_every_cycles: 2_048,
        }
    }
}

/// The architectural observation the oracles compare: final registers
/// plus every memory word the generated-program ABI can touch.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Observation {
    regs: Vec<u64>,
    words: Vec<(u64, u64)>,
}

fn observed_addrs() -> impl Iterator<Item = u64> {
    (0..TABLE_WORDS)
        .map(|k| TABLE_BASE + 8 * k)
        .chain((0..DATA_WORDS).map(|k| DATA_BASE + 8 * k))
        .chain([DIGEST_ADDR, STATUS_ADDR])
}

fn observe_functional(program: &Program) -> Result<Observation, Failure> {
    let mut mem = SparseMem::from_image(&program.image);
    let mut state = recon_isa::ArchState::at_entry(program);
    for _ in 0..MAX_FUNC_STEPS {
        if state.halted {
            break;
        }
        recon_isa::exec::step(program, &mut state, &mut mem)
            .map_err(|e| Failure::Functional(format!("functional fault: {e}")))?;
    }
    if !state.halted {
        return Err(Failure::Functional(format!(
            "did not halt within {MAX_FUNC_STEPS} functional steps"
        )));
    }
    Ok(Observation {
        regs: (0..NUM_ARCH_REGS)
            .map(|i| state.read(ArchReg::new(i)))
            .collect(),
        words: observed_addrs().map(|a| (a, mem.peek(a))).collect(),
    })
}

fn observe_system(sys: &System) -> Observation {
    let core = &sys.cores()[0];
    Observation {
        regs: (0..NUM_ARCH_REGS)
            .map(|i| core.arch_read(ArchReg::new(i)))
            .collect(),
        words: observed_addrs().map(|a| (a, sys.data().peek(a))).collect(),
    }
}

fn first_diff(a: &Observation, b: &Observation) -> Option<String> {
    for i in 0..NUM_ARCH_REGS {
        if a.regs[i] != b.regs[i] {
            return Some(format!("r{i}: {:#x} vs {:#x}", a.regs[i], b.regs[i]));
        }
    }
    for ((addr, va), (_, vb)) in a.words.iter().zip(&b.words) {
        if va != vb {
            return Some(format!("mem[{addr:#x}]: {va:#x} vs {vb:#x}"));
        }
    }
    None
}

fn make_system(program: &Program, cfg: &OracleConfig, secure: SecureConfig) -> System {
    System::new(
        &Workload::single(program.clone()),
        cfg.core,
        MemConfig::default(),
        secure,
        ReconConfig::default(),
    )
}

fn detailed_budget(cfg: &OracleConfig) -> Budget {
    Budget {
        watchdog_cycles: Some(cfg.watchdog_cycles),
        audit_every_cycles: Some(cfg.audit_every_cycles),
        ..Budget::default()
    }
}

fn run_detailed(
    program: &Program,
    cfg: &OracleConfig,
    secure: SecureConfig,
) -> Result<Observation, Failure> {
    let label = secure.label();
    let mut sys = make_system(program, cfg, secure);
    match sys.run_budgeted(MAX_DETAILED_CYCLES, &detailed_budget(cfg)) {
        Ok(_) => Ok(observe_system(&sys)),
        Err(SimError::Stalled { report, .. }) => Err(Failure::Stalled {
            scheme: label,
            summary: report.summary(),
        }),
        Err(SimError::InvariantViolated { report, .. }) => Err(Failure::AuditViolation {
            scheme: label,
            summary: report.summary(),
        }),
        Err(_) => Err(Failure::Deadline { scheme: label }),
    }
}

/// The five-scheme matrix, baseline first.
#[must_use]
pub fn all_schemes() -> [SecureConfig; 5] {
    [
        SecureConfig::unsafe_baseline(),
        SecureConfig::nda(),
        SecureConfig::nda_recon(),
        SecureConfig::stt(),
        SecureConfig::stt_recon(),
    ]
}

/// Runs all five oracles over one program. `Ok(())` means every oracle
/// held; the first violated oracle is returned as a [`Failure`].
///
/// # Errors
///
/// The oracle violation, if any.
pub fn check(program: &Program, cfg: &OracleConfig) -> Result<(), Failure> {
    let functional = observe_functional(program)?;

    // Oracle 1 + 4 (baseline), then 2 + 4 (each secure scheme).
    let schemes = all_schemes();
    let baseline = run_detailed(program, cfg, schemes[0])?;
    if let Some(diff) = first_diff(&functional, &baseline) {
        return Err(Failure::FunctionalMismatch(format!(
            "functional vs detailed baseline: {diff}"
        )));
    }
    for secure in &schemes[1..] {
        let obs = run_detailed(program, cfg, *secure)?;
        if let Some(diff) = first_diff(&baseline, &obs) {
            return Err(Failure::SchemeDivergence {
                scheme: secure.label(),
                detail: diff,
            });
        }
    }

    // Oracle 3: snapshot/restore transparency under the most stateful
    // scheme (STT+ReCon carries taint, guard, and LPT state).
    if !cfg.skip_snapshot {
        check_snapshot(program, cfg, schemes[4])?;
    }
    Ok(())
}

fn check_snapshot(
    program: &Program,
    cfg: &OracleConfig,
    secure: SecureConfig,
) -> Result<(), Failure> {
    let budget = Budget {
        checkpoint_every_cycles: Some(cfg.snapshot_cadence),
        ..detailed_budget(cfg)
    };
    let mut first: Option<(u64, Vec<u8>)> = None;
    let mut sys = make_system(program, cfg, secure);
    let full = sys
        .run_budgeted_checkpointed(MAX_DETAILED_CYCLES, &budget, |cycle, bytes| {
            if first.is_none() {
                first = Some((cycle, bytes.to_vec()));
            }
        })
        .map_err(|e| Failure::SnapshotMismatch(format!("checkpointed run failed: {e}")))?;
    let Some((cycle, bytes)) = first else {
        // Program finished before the first cadence boundary: nothing
        // to restore, oracle trivially holds.
        return Ok(());
    };

    let mut resumed = make_system(program, cfg, secure);
    resumed
        .restore_bytes(&bytes)
        .map_err(|e| Failure::SnapshotMismatch(format!("restore failed at cycle {cycle}: {e}")))?;
    let reencoded = resumed.snapshot_bytes();
    if reencoded != bytes {
        return Err(Failure::SnapshotMismatch(format!(
            "snapshot at cycle {cycle} is not byte-identical after restore \
             ({} vs {} bytes)",
            bytes.len(),
            reencoded.len()
        )));
    }
    // Continue with the same cadence (boundaries re-align post-drain)
    // and no fuel override: the snapshot carries the remaining fuel.
    let resumed_result = resumed
        .run_budgeted_checkpointed(MAX_DETAILED_CYCLES, &budget, |_, _| {})
        .map_err(|e| Failure::SnapshotMismatch(format!("resumed run failed: {e}")))?;
    if resumed_result != full {
        return Err(Failure::SnapshotMismatch(format!(
            "resumed run diverged from uninterrupted run \
             (cycles {} vs {}, committed {} vs {})",
            resumed_result.cycles,
            full.cycles,
            resumed_result.committed(),
            full.committed()
        )));
    }
    let obs = observe_system(&resumed);
    let direct = run_detailed(program, cfg, secure)?;
    if let Some(diff) = first_diff(&direct, &obs) {
        return Err(Failure::SnapshotMismatch(format!(
            "resumed architectural state diverged: {diff}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};
    use recon_isa::rng::SplitMix64;

    #[test]
    fn clean_programs_pass_all_oracles() {
        let cfg = OracleConfig::default();
        for seed in [1u64, 2, 3] {
            let p = generate(&mut SplitMix64::new(seed), &GenParams::default());
            check(&p, &cfg).unwrap_or_else(|f| panic!("seed {seed}: {f:?}"));
        }
    }

    #[test]
    fn amo_bug_hook_trips_the_stall_oracle() {
        // A store fetched into the AMO's shadow sits in the SQ and can
        // never commit behind it; the historical gate then deadlocks.
        // The watchdog oracle must catch it and name the AMO.
        use recon_isa::reg::names::*;
        use recon_isa::Inst;
        let program = Program {
            code: vec![
                Inst::LoadImm {
                    dst: R1,
                    imm: DATA_BASE,
                },
                Inst::AmoAdd {
                    dst: R2,
                    base: R1,
                    offset: 8,
                    add: R1,
                },
                Inst::Store {
                    val: R1,
                    base: R1,
                    offset: 0,
                },
                Inst::Halt,
            ],
            entry: 0,
            image: recon_isa::MemImage::new(),
        };
        let cfg = OracleConfig {
            core: CoreConfig {
                amo_empty_sq_bug: true,
                ..CoreConfig::tiny()
            },
            watchdog_cycles: 5_000,
            ..OracleConfig::default()
        };
        match check(&program, &cfg) {
            Err(Failure::Stalled { summary, .. }) => {
                assert!(summary.contains("amoadd"), "summary: {summary}");
            }
            other => panic!("expected a stall, got {other:?}"),
        }
    }
}

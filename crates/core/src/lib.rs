//! # recon — the paper's primary contribution
//!
//! Core data structures of **ReCon** (*Efficient Detection, Management,
//! and Use of Non-Speculative Information Leakage*, MICRO 2023):
//!
//! * [`RevealMask`] — the per-cache-line reveal/conceal bit-vector (one
//!   bit per aligned 8-byte word) that the memory hierarchy carries and
//!   the coherence protocol keeps coherent (§5.2–5.3);
//! * [`LoadPairTable`] — the commit-stage detector of direct-dependence
//!   load pairs, indexed by physical register, including the reduced
//!   tagged variant of §6.6 (§5.1);
//! * [`ReconConfig`] / [`ReconLevels`] / [`LptSize`] — the design-space
//!   knobs evaluated in §6.5 and §6.6;
//! * [`overhead`] — the §6.7 storage-cost arithmetic.
//!
//! The surrounding crates wire these into a full system: `recon-mem`
//! piggybacks [`RevealMask`] on a directory MESI protocol, and
//! `recon-cpu` hosts the [`LoadPairTable`] in its commit stage and lifts
//! NDA/STT defenses for loads that hit revealed words.
//!
//! ## The mechanism in one example
//!
//! ```
//! use recon::{LoadPairTable, RevealMask, word_index};
//!
//! // Non-speculative execution commits:
//! //   PC1: load p7, [0x13 * 8]   (loads a pointer)
//! //   PC2: load p9, [p7]         (dereferences it)
//! let mut lpt = LoadPairTable::full(180);
//! assert_eq!(lpt.commit_load(7, None, 0x98, false), None);
//! let revealed = lpt.commit_load(9, Some(7), 0x4000, false);
//! assert_eq!(revealed, Some(0x98)); // PC1's address is now public
//!
//! // The cache line holding 0x98 marks that word revealed:
//! let mut mask = RevealMask::all_concealed();
//! mask.reveal(word_index(0x98));
//! assert!(mask.is_revealed(word_index(0x98)));
//! // A later *speculative* load of 0x98 may now be dereferenced without
//! // waiting: its value is already public.
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod lpt;
pub mod mask;
pub mod overhead;
pub mod policy;

pub use audit::AuditViolation;
pub use lpt::{LoadPairTable, LptStats};
pub use mask::{
    line_of, word_index, MaskArray, RevealMask, LINE_BYTES, MASKS_PER_WORD, WORDS_PER_LINE,
    WORD_BYTES,
};
pub use policy::{LptSize, ReconConfig, ReconLevels};

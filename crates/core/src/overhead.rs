//! Storage-overhead accounting (§6.7 of the paper).
//!
//! ReCon's hardware cost is (i) the load-pair table in the commit stage
//! and (ii) one reveal byte per 64-byte cache line in the private caches
//! and the directory. These functions reproduce the paper's arithmetic
//! (e.g. a 180-entry LPT ≈ 1.1 KiB; total metadata < 1.5 % of cache
//! storage).

use crate::mask::{LINE_BYTES, WORDS_PER_LINE};

/// Address bits stored per LPT entry (the paper uses 48-bit physical
/// addresses).
pub const LPT_ADDR_BITS: usize = 48;
/// Active bit per LPT entry.
pub const LPT_ACTIVE_BITS: usize = 1;
/// Tag bits per entry when the table is smaller than the physical
/// register file (§6.6 adds "an extra eight bits per entry").
pub const LPT_TAG_BITS: usize = 8;

/// Size in **bits** of a full (untagged) LPT with `entries` entries.
#[must_use]
pub fn lpt_bits(entries: usize) -> usize {
    entries * (LPT_ADDR_BITS + LPT_ACTIVE_BITS)
}

/// Size in **bits** of a reduced, tagged LPT with `entries` entries.
#[must_use]
pub fn lpt_tagged_bits(entries: usize) -> usize {
    entries * (LPT_ADDR_BITS + LPT_ACTIVE_BITS + LPT_TAG_BITS)
}

/// Size in bytes (rounded up) of a full LPT.
///
/// ```
/// use recon::overhead::lpt_bytes;
///
/// // Intel Skylake: 180 integer physical registers -> ~1.1 KiB.
/// assert_eq!(lpt_bytes(180), 1103);
/// // AMD Zen 4: 224 registers -> ~1.37 KiB.
/// assert_eq!(lpt_bytes(224), 1372);
/// ```
#[must_use]
pub fn lpt_bytes(entries: usize) -> usize {
    lpt_bits(entries).div_ceil(8)
}

/// Size in bytes (rounded up) of a reduced, tagged LPT.
#[must_use]
pub fn lpt_tagged_bytes(entries: usize) -> usize {
    lpt_tagged_bits(entries).div_ceil(8)
}

/// Reveal-mask metadata in **bytes** for a cache of `capacity_bytes`
/// (one bit per word, i.e. one byte per 64-byte line).
#[must_use]
pub fn mask_bytes_for_cache(capacity_bytes: u64) -> u64 {
    (capacity_bytes / LINE_BYTES) * (WORDS_PER_LINE as u64 / 8)
}

/// Per-line storage (data + tag + coherence state) used as the
/// denominator of the paper's "< 1.5 % of total cache storage" claim.
/// 64 B data + ~6 B tag/state.
pub const LINE_TOTAL_BYTES: u64 = 70;

/// Fraction (0..1) of total cache storage that reveal masks add, for a
/// hierarchy with the given aggregate capacity in bytes.
#[must_use]
pub fn mask_overhead_fraction(total_cache_bytes: u64) -> f64 {
    let lines = total_cache_bytes / LINE_BYTES;
    let mask = lines as f64; // 1 byte per line
    let storage = (lines * LINE_TOTAL_BYTES) as f64;
    mask / storage
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_lpt_is_about_1_1_kib() {
        let b = lpt_bytes(180);
        assert!((1100..1160).contains(&b), "got {b}");
    }

    #[test]
    fn zen4_lpt_is_about_1_37_kib() {
        let b = lpt_bytes(224);
        assert!((1360..1440).contains(&b), "got {b}");
    }

    #[test]
    fn halved_tagged_lpt_matches_paper() {
        // §6.7: halving 180 -> 90 entries with 8-bit tags ≈ 641 bytes.
        assert_eq!(lpt_tagged_bytes(90), 642);
        // 224 -> 112 entries ≈ 798 bytes.
        assert_eq!(lpt_tagged_bytes(112), 798);
    }

    #[test]
    fn mask_bytes_one_per_line() {
        assert_eq!(mask_bytes_for_cache(64 * 1024), 1024);
        assert_eq!(mask_bytes_for_cache(2 * 1024 * 1024), 32 * 1024);
    }

    #[test]
    fn mask_overhead_below_1_5_percent() {
        // 64 KiB L1 + 2 MiB L2 + 16 MiB LLC per the paper's Table 2.
        let total = (64 + 2048 + 16384) * 1024;
        let f = mask_overhead_fraction(total);
        assert!(f < 0.015, "fraction {f}");
        assert!(f > 0.01, "one byte per 70 ≈ 1.4%: {f}");
    }
}

//! Reveal/conceal bit-vectors — the per-cache-line metadata at the heart
//! of ReCon (§5.2 of the paper).
//!
//! Every 64-byte cache line carries one bit per aligned 8-byte word:
//! `1` = *revealed* (the word's value has leaked non-speculatively and is
//! safe to dereference under speculation), `0` = *concealed* (must be
//! protected by the underlying secure speculation scheme).

use core::fmt;

/// Bytes per machine word tracked by ReCon (reveals are word-granular).
pub const WORD_BYTES: u64 = 8;
/// Bytes per cache line.
pub const LINE_BYTES: u64 = 64;
/// Words per cache line — one reveal bit each.
pub const WORDS_PER_LINE: usize = (LINE_BYTES / WORD_BYTES) as usize;

/// Returns the line-aligned base address containing `addr`.
#[must_use]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

/// Returns the index (0..[`WORDS_PER_LINE`]) of the word containing
/// `addr` within its line.
#[must_use]
pub fn word_index(addr: u64) -> usize {
    ((addr % LINE_BYTES) / WORD_BYTES) as usize
}

/// The reveal/conceal bit-vector of one cache line.
///
/// A freshly fetched line is all-concealed (§5.2: "A newly fetched cache
/// line from memory has all its words marked as concealed").
///
/// ```
/// use recon::RevealMask;
///
/// let mut m = RevealMask::all_concealed();
/// assert!(!m.is_revealed(3));
/// m.reveal(3);
/// assert!(m.is_revealed(3));
/// m.conceal(3); // a store to the word conceals it again
/// assert!(!m.is_revealed(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RevealMask(u8);

impl RevealMask {
    /// A mask with every word concealed — the state of a line fetched
    /// from memory.
    #[must_use]
    pub fn all_concealed() -> Self {
        RevealMask(0)
    }

    /// A mask with every word revealed (useful in tests).
    #[must_use]
    pub fn all_revealed() -> Self {
        RevealMask(0xFF)
    }

    /// Constructs a mask from its raw bits (bit *i* = word *i*).
    #[must_use]
    pub fn from_bits(bits: u8) -> Self {
        RevealMask(bits)
    }

    /// The raw bits (bit *i* = word *i*).
    #[must_use]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Whether word `word` (0..[`WORDS_PER_LINE`]) is revealed.
    ///
    /// # Panics
    ///
    /// Panics if `word >= WORDS_PER_LINE`.
    #[must_use]
    pub fn is_revealed(self, word: usize) -> bool {
        assert!(word < WORDS_PER_LINE, "word index {word} out of range");
        self.0 & (1 << word) != 0
    }

    /// Marks word `word` revealed (a committed load pair dereferenced it).
    ///
    /// # Panics
    ///
    /// Panics if `word >= WORDS_PER_LINE`.
    pub fn reveal(&mut self, word: usize) {
        assert!(word < WORDS_PER_LINE, "word index {word} out of range");
        self.0 |= 1 << word;
    }

    /// Marks word `word` concealed (a committed store changed it).
    ///
    /// # Panics
    ///
    /// Panics if `word >= WORDS_PER_LINE`.
    pub fn conceal(&mut self, word: usize) {
        assert!(word < WORDS_PER_LINE, "word index {word} out of range");
        self.0 &= !(1 << word);
    }

    /// Merges another copy of this line's mask into this one by logical
    /// OR — the §5.3 rule applied when an L1 evicts its copy back to the
    /// directory ("Or-ing the L1 bit-vector with the directory bit-vector
    /// guarantees that information is preserved across consecutive
    /// evictions from different L1s").
    pub fn merge_or(&mut self, other: RevealMask) {
        self.0 |= other.0;
    }

    /// Number of revealed words in the line.
    #[must_use]
    pub fn count_revealed(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether any word in the line is revealed.
    #[must_use]
    pub fn any_revealed(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Debug for RevealMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RevealMask({:08b})", self.0)
    }
}

impl fmt::Display for RevealMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Word 0 printed leftmost for readability.
        for w in 0..WORDS_PER_LINE {
            f.write_str(if self.is_revealed(w) { "R" } else { "c" })?;
        }
        Ok(())
    }
}

impl core::ops::BitOr for RevealMask {
    type Output = RevealMask;

    fn bitor(self, rhs: RevealMask) -> RevealMask {
        RevealMask(self.0 | rhs.0)
    }
}

/// Line masks packed into one u64 word.
pub const MASKS_PER_WORD: usize = 8;

/// A dense array of per-line [`RevealMask`]s packed eight to a `u64` —
/// the bitset fast path for the mem-side mask arrays.
///
/// Cache and directory structures track one mask per line; scanning or
/// merging them a byte at a time is the detailed mode's second-biggest
/// hot-path cost after decode. Packing eight line-masks per machine
/// word makes the multi-line operations — OR-merging one array into
/// another (§5.3 eviction/downgrade propagation), counting revealed
/// words, testing for any reveal — touch words, not bytes, while
/// keeping single-line get/set a shift-and-mask.
///
/// ```
/// use recon::{MaskArray, RevealMask};
///
/// let mut a = MaskArray::new(16);
/// a.set(3, RevealMask::from_bits(0b101));
/// assert_eq!(a.get(3).bits(), 0b101);
/// assert_eq!(a.count_revealed(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MaskArray {
    words: Vec<u64>,
    lines: usize,
}

impl MaskArray {
    /// An array of `lines` all-concealed masks.
    #[must_use]
    pub fn new(lines: usize) -> Self {
        MaskArray {
            words: vec![0; lines.div_ceil(MASKS_PER_WORD)],
            lines,
        }
    }

    /// Number of line masks held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines
    }

    /// Whether the array holds no lines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines == 0
    }

    #[inline]
    fn slot(line: usize) -> (usize, u32) {
        (line / MASKS_PER_WORD, (line % MASKS_PER_WORD) as u32 * 8)
    }

    /// The mask of line `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line >= len()`.
    #[must_use]
    #[inline]
    pub fn get(&self, line: usize) -> RevealMask {
        assert!(line < self.lines, "line {line} out of range");
        let (w, sh) = Self::slot(line);
        RevealMask::from_bits((self.words[w] >> sh) as u8)
    }

    /// Replaces the mask of line `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line >= len()`.
    #[inline]
    pub fn set(&mut self, line: usize, mask: RevealMask) {
        assert!(line < self.lines, "line {line} out of range");
        let (w, sh) = Self::slot(line);
        self.words[w] = (self.words[w] & !(0xFFu64 << sh)) | (u64::from(mask.bits()) << sh);
    }

    /// ORs `mask` into line `line` (the §5.3 merge rule).
    ///
    /// # Panics
    ///
    /// Panics if `line >= len()`.
    #[inline]
    pub fn or_line(&mut self, line: usize, mask: RevealMask) {
        assert!(line < self.lines, "line {line} out of range");
        let (w, sh) = Self::slot(line);
        self.words[w] |= u64::from(mask.bits()) << sh;
    }

    /// ORs every mask of `other` into this array, one machine word at a
    /// time — the batch form of [`RevealMask::merge_or`] across a whole
    /// structure.
    ///
    /// # Panics
    ///
    /// Panics if the arrays have different lengths.
    pub fn merge_or_from(&mut self, other: &MaskArray) {
        assert_eq!(self.lines, other.lines, "mask array size mismatch");
        for (dst, src) in self.words.iter_mut().zip(&other.words) {
            *dst |= *src;
        }
    }

    /// Total revealed words across every line, by per-word popcount.
    #[must_use]
    pub fn count_revealed(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Whether any line has any revealed word (word-wide compare).
    #[must_use]
    pub fn any_revealed(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Conceals every word of every line (word-wide clear).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_line_is_all_concealed() {
        let m = RevealMask::all_concealed();
        assert!(!m.any_revealed());
        assert_eq!(m.count_revealed(), 0);
        for w in 0..WORDS_PER_LINE {
            assert!(!m.is_revealed(w));
        }
    }

    #[test]
    fn reveal_conceal_round_trip() {
        let mut m = RevealMask::all_concealed();
        m.reveal(0);
        m.reveal(7);
        assert!(m.is_revealed(0) && m.is_revealed(7) && !m.is_revealed(3));
        assert_eq!(m.count_revealed(), 2);
        m.conceal(0);
        assert!(!m.is_revealed(0) && m.is_revealed(7));
    }

    #[test]
    fn merge_or_preserves_information() {
        let mut dir = RevealMask::from_bits(0b0000_1010);
        let l1 = RevealMask::from_bits(0b0100_0010);
        dir.merge_or(l1);
        assert_eq!(dir.bits(), 0b0100_1010);
    }

    #[test]
    fn bitor_operator_matches_merge() {
        let a = RevealMask::from_bits(0b1);
        let b = RevealMask::from_bits(0b10);
        assert_eq!((a | b).bits(), 0b11);
    }

    #[test]
    fn line_and_word_helpers() {
        assert_eq!(line_of(0x1234), 0x1200);
        assert_eq!(line_of(0x1200), 0x1200);
        assert_eq!(word_index(0x1200), 0);
        assert_eq!(word_index(0x1208), 1);
        assert_eq!(word_index(0x1238), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_word_panics() {
        let _ = RevealMask::all_concealed().is_revealed(8);
    }

    #[test]
    fn display_shows_per_word_state() {
        let mut m = RevealMask::all_concealed();
        m.reveal(1);
        assert_eq!(m.to_string(), "cRcccccc");
    }

    #[test]
    fn all_revealed_counts_eight() {
        assert_eq!(RevealMask::all_revealed().count_revealed(), 8);
    }

    #[test]
    fn mask_array_round_trips_every_line() {
        let mut a = MaskArray::new(21); // not a multiple of MASKS_PER_WORD
        assert_eq!(a.len(), 21);
        assert!(!a.is_empty());
        for line in 0..21 {
            a.set(line, RevealMask::from_bits((line as u8).wrapping_mul(37)));
        }
        for line in 0..21 {
            assert_eq!(a.get(line).bits(), (line as u8).wrapping_mul(37));
        }
    }

    #[test]
    fn mask_array_set_overwrites_only_its_slot() {
        let mut a = MaskArray::new(8);
        for line in 0..8 {
            a.set(line, RevealMask::all_revealed());
        }
        a.set(3, RevealMask::from_bits(0b1));
        assert_eq!(a.get(3).bits(), 0b1);
        for line in (0..8).filter(|&l| l != 3) {
            assert_eq!(a.get(line).bits(), 0xFF);
        }
    }

    #[test]
    fn mask_array_batch_ops_match_per_line_reference() {
        // Drive MaskArray and a plain Vec<RevealMask> with the same
        // pseudo-random op sequence; they must stay equivalent.
        let n = 37;
        let mut packed = MaskArray::new(n);
        let mut reference = vec![RevealMask::all_concealed(); n];
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for _ in 0..2_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = (x as usize >> 8) % n;
            let bits = (x >> 32) as u8;
            match x % 3 {
                0 => {
                    packed.set(line, RevealMask::from_bits(bits));
                    reference[line] = RevealMask::from_bits(bits);
                }
                1 => {
                    packed.or_line(line, RevealMask::from_bits(bits));
                    reference[line].merge_or(RevealMask::from_bits(bits));
                }
                _ => {
                    assert_eq!(packed.get(line), reference[line]);
                }
            }
        }
        for (line, want) in reference.iter().enumerate() {
            assert_eq!(packed.get(line), *want);
        }
        let want_count: u64 = reference
            .iter()
            .map(|m| u64::from(m.count_revealed()))
            .sum();
        assert_eq!(packed.count_revealed(), want_count);
        assert_eq!(
            packed.any_revealed(),
            reference.iter().any(|m| m.any_revealed())
        );
    }

    #[test]
    fn mask_array_merge_or_from_is_per_line_or() {
        let n = 19;
        let mut a = MaskArray::new(n);
        let mut b = MaskArray::new(n);
        for line in 0..n {
            a.set(line, RevealMask::from_bits((line as u8) << 1));
            b.set(line, RevealMask::from_bits(0xA5 ^ line as u8));
        }
        let mut want = MaskArray::new(n);
        for line in 0..n {
            want.set(line, a.get(line) | b.get(line));
        }
        a.merge_or_from(&b);
        assert_eq!(a, want);
    }

    #[test]
    fn mask_array_clear_conceals_everything() {
        let mut a = MaskArray::new(11);
        for line in 0..11 {
            a.set(line, RevealMask::all_revealed());
        }
        assert!(a.any_revealed());
        a.clear();
        assert!(!a.any_revealed());
        assert_eq!(a.count_revealed(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mask_array_out_of_range_panics() {
        let _ = MaskArray::new(4).get(4);
    }
}

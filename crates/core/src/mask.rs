//! Reveal/conceal bit-vectors — the per-cache-line metadata at the heart
//! of ReCon (§5.2 of the paper).
//!
//! Every 64-byte cache line carries one bit per aligned 8-byte word:
//! `1` = *revealed* (the word's value has leaked non-speculatively and is
//! safe to dereference under speculation), `0` = *concealed* (must be
//! protected by the underlying secure speculation scheme).

use core::fmt;

/// Bytes per machine word tracked by ReCon (reveals are word-granular).
pub const WORD_BYTES: u64 = 8;
/// Bytes per cache line.
pub const LINE_BYTES: u64 = 64;
/// Words per cache line — one reveal bit each.
pub const WORDS_PER_LINE: usize = (LINE_BYTES / WORD_BYTES) as usize;

/// Returns the line-aligned base address containing `addr`.
#[must_use]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

/// Returns the index (0..[`WORDS_PER_LINE`]) of the word containing
/// `addr` within its line.
#[must_use]
pub fn word_index(addr: u64) -> usize {
    ((addr % LINE_BYTES) / WORD_BYTES) as usize
}

/// The reveal/conceal bit-vector of one cache line.
///
/// A freshly fetched line is all-concealed (§5.2: "A newly fetched cache
/// line from memory has all its words marked as concealed").
///
/// ```
/// use recon::RevealMask;
///
/// let mut m = RevealMask::all_concealed();
/// assert!(!m.is_revealed(3));
/// m.reveal(3);
/// assert!(m.is_revealed(3));
/// m.conceal(3); // a store to the word conceals it again
/// assert!(!m.is_revealed(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RevealMask(u8);

impl RevealMask {
    /// A mask with every word concealed — the state of a line fetched
    /// from memory.
    #[must_use]
    pub fn all_concealed() -> Self {
        RevealMask(0)
    }

    /// A mask with every word revealed (useful in tests).
    #[must_use]
    pub fn all_revealed() -> Self {
        RevealMask(0xFF)
    }

    /// Constructs a mask from its raw bits (bit *i* = word *i*).
    #[must_use]
    pub fn from_bits(bits: u8) -> Self {
        RevealMask(bits)
    }

    /// The raw bits (bit *i* = word *i*).
    #[must_use]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Whether word `word` (0..[`WORDS_PER_LINE`]) is revealed.
    ///
    /// # Panics
    ///
    /// Panics if `word >= WORDS_PER_LINE`.
    #[must_use]
    pub fn is_revealed(self, word: usize) -> bool {
        assert!(word < WORDS_PER_LINE, "word index {word} out of range");
        self.0 & (1 << word) != 0
    }

    /// Marks word `word` revealed (a committed load pair dereferenced it).
    ///
    /// # Panics
    ///
    /// Panics if `word >= WORDS_PER_LINE`.
    pub fn reveal(&mut self, word: usize) {
        assert!(word < WORDS_PER_LINE, "word index {word} out of range");
        self.0 |= 1 << word;
    }

    /// Marks word `word` concealed (a committed store changed it).
    ///
    /// # Panics
    ///
    /// Panics if `word >= WORDS_PER_LINE`.
    pub fn conceal(&mut self, word: usize) {
        assert!(word < WORDS_PER_LINE, "word index {word} out of range");
        self.0 &= !(1 << word);
    }

    /// Merges another copy of this line's mask into this one by logical
    /// OR — the §5.3 rule applied when an L1 evicts its copy back to the
    /// directory ("Or-ing the L1 bit-vector with the directory bit-vector
    /// guarantees that information is preserved across consecutive
    /// evictions from different L1s").
    pub fn merge_or(&mut self, other: RevealMask) {
        self.0 |= other.0;
    }

    /// Number of revealed words in the line.
    #[must_use]
    pub fn count_revealed(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether any word in the line is revealed.
    #[must_use]
    pub fn any_revealed(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Debug for RevealMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RevealMask({:08b})", self.0)
    }
}

impl fmt::Display for RevealMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Word 0 printed leftmost for readability.
        for w in 0..WORDS_PER_LINE {
            f.write_str(if self.is_revealed(w) { "R" } else { "c" })?;
        }
        Ok(())
    }
}

impl core::ops::BitOr for RevealMask {
    type Output = RevealMask;

    fn bitor(self, rhs: RevealMask) -> RevealMask {
        RevealMask(self.0 | rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_line_is_all_concealed() {
        let m = RevealMask::all_concealed();
        assert!(!m.any_revealed());
        assert_eq!(m.count_revealed(), 0);
        for w in 0..WORDS_PER_LINE {
            assert!(!m.is_revealed(w));
        }
    }

    #[test]
    fn reveal_conceal_round_trip() {
        let mut m = RevealMask::all_concealed();
        m.reveal(0);
        m.reveal(7);
        assert!(m.is_revealed(0) && m.is_revealed(7) && !m.is_revealed(3));
        assert_eq!(m.count_revealed(), 2);
        m.conceal(0);
        assert!(!m.is_revealed(0) && m.is_revealed(7));
    }

    #[test]
    fn merge_or_preserves_information() {
        let mut dir = RevealMask::from_bits(0b0000_1010);
        let l1 = RevealMask::from_bits(0b0100_0010);
        dir.merge_or(l1);
        assert_eq!(dir.bits(), 0b0100_1010);
    }

    #[test]
    fn bitor_operator_matches_merge() {
        let a = RevealMask::from_bits(0b1);
        let b = RevealMask::from_bits(0b10);
        assert_eq!((a | b).bits(), 0b11);
    }

    #[test]
    fn line_and_word_helpers() {
        assert_eq!(line_of(0x1234), 0x1200);
        assert_eq!(line_of(0x1200), 0x1200);
        assert_eq!(word_index(0x1200), 0);
        assert_eq!(word_index(0x1208), 1);
        assert_eq!(word_index(0x1238), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_word_panics() {
        let _ = RevealMask::all_concealed().is_revealed(8);
    }

    #[test]
    fn display_shows_per_word_state() {
        let mut m = RevealMask::all_concealed();
        m.reveal(1);
        assert_eq!(m.to_string(), "cRcccccc");
    }

    #[test]
    fn all_revealed_counts_eight() {
        assert_eq!(RevealMask::all_revealed().count_revealed(), 8);
    }
}

//! ReCon configuration: which cache levels carry reveal metadata and how
//! large the load-pair table is.

/// Which cache levels track reveal/conceal metadata (§6.5, Figure 10).
///
/// Reveal state is only *usable* at the levels that track it: with
/// [`ReconLevels::L1Only`], a reveal that is evicted from the L1 is lost
/// (the mask cannot be parked in L2 or the directory), so workloads whose
/// working set exceeds the L1 lose reveal coverage.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ReconLevels {
    /// Reveal masks in the private L1 only.
    L1Only,
    /// Reveal masks in the private L1 and L2.
    L1L2,
    /// Reveal masks at every level including the LLC directory (the
    /// paper's default design).
    #[default]
    All,
}

impl ReconLevels {
    /// All variants, in increasing coverage order.
    pub const ALL: [ReconLevels; 3] = [ReconLevels::L1Only, ReconLevels::L1L2, ReconLevels::All];

    /// Whether the (private) L2 keeps reveal masks.
    #[must_use]
    pub fn covers_l2(self) -> bool {
        !matches!(self, ReconLevels::L1Only)
    }

    /// Whether the LLC/directory keeps reveal masks.
    #[must_use]
    pub fn covers_llc(self) -> bool {
        matches!(self, ReconLevels::All)
    }
}

impl core::fmt::Display for ReconLevels {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ReconLevels::L1Only => "L1",
            ReconLevels::L1L2 => "L1+L2",
            ReconLevels::All => "L1+L2+LLC",
        };
        f.write_str(s)
    }
}

/// Load-pair table sizing (§6.6, Figure 11).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum LptSize {
    /// One entry per physical register (no conflicts possible).
    #[default]
    Full,
    /// A reduced, tagged table with this many entries.
    Entries(usize),
}

impl LptSize {
    /// Resolves to a concrete entry count given the core's physical
    /// register file size.
    #[must_use]
    pub fn resolve(self, num_pregs: usize) -> usize {
        match self {
            LptSize::Full => num_pregs,
            LptSize::Entries(n) => n.max(1),
        }
    }
}

/// Complete ReCon configuration.
///
/// ```
/// use recon::{ReconConfig, ReconLevels, LptSize};
///
/// let cfg = ReconConfig::default();
/// assert!(cfg.enabled);
/// assert_eq!(cfg.levels, ReconLevels::All);
/// assert_eq!(cfg.lpt_size, LptSize::Full);
///
/// let reduced = ReconConfig { lpt_size: LptSize::Entries(16), ..ReconConfig::default() };
/// assert_eq!(reduced.lpt_size.resolve(180), 16);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReconConfig {
    /// Master switch: when `false`, no reveals are produced or consumed
    /// (the underlying scheme runs unmodified).
    pub enabled: bool,
    /// Which cache levels carry reveal metadata.
    pub levels: ReconLevels,
    /// Load-pair table size.
    pub lpt_size: LptSize,
    /// Detect pairs through *multi-source* loads (base+index addressing)
    /// with one LPT lookup per operand — the paper's §5.1.1 future-work
    /// extension. Off by default, matching the evaluated configuration
    /// (x86-style cracking breaks such pairs).
    pub multi_source: bool,
}

impl Default for ReconConfig {
    fn default() -> Self {
        ReconConfig {
            enabled: true,
            levels: ReconLevels::All,
            lpt_size: LptSize::Full,
            multi_source: false,
        }
    }
}

impl ReconConfig {
    /// A configuration with ReCon completely disabled.
    #[must_use]
    pub fn disabled() -> Self {
        ReconConfig {
            enabled: false,
            ..ReconConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_coverage() {
        assert!(!ReconLevels::L1Only.covers_l2());
        assert!(!ReconLevels::L1Only.covers_llc());
        assert!(ReconLevels::L1L2.covers_l2());
        assert!(!ReconLevels::L1L2.covers_llc());
        assert!(ReconLevels::All.covers_l2());
        assert!(ReconLevels::All.covers_llc());
    }

    #[test]
    fn lpt_size_resolution() {
        assert_eq!(LptSize::Full.resolve(180), 180);
        assert_eq!(LptSize::Entries(45).resolve(180), 45);
        assert_eq!(LptSize::Entries(0).resolve(180), 1, "clamped to 1");
    }

    #[test]
    fn default_is_paper_design() {
        let cfg = ReconConfig::default();
        assert!(cfg.enabled && cfg.levels == ReconLevels::All);
    }

    #[test]
    fn disabled_config() {
        assert!(!ReconConfig::disabled().enabled);
    }

    #[test]
    fn levels_display() {
        assert_eq!(ReconLevels::All.to_string(), "L1+L2+LLC");
        assert_eq!(ReconLevels::L1Only.to_string(), "L1");
    }
}

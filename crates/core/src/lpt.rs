//! The Load-Pair Table (LPT) — ReCon's commit-stage detector of
//! direct-dependence load pairs (§5.1 of the paper).
//!
//! The LPT is indexed by *physical* register id. Each entry holds an
//! active bit and the memory address accessed by the committed load that
//! last wrote that physical register. When a load commits:
//!
//! 1. it looks up its address-source register; if the entry is active, a
//!    load pair is detected and the address stored there (the *first*
//!    load's address) is **revealed**;
//! 2. it installs its own accessed address into its destination
//!    register's entry and sets the active bit (unless the word it loaded
//!    was already revealed — installing then is pointless);
//! 3. any *non-load* instruction that commits clears the active bit of
//!    its destination register.
//!
//! Detection at commit, via physical registers, sidesteps the aliasing of
//! multiple in-flight dynamic instances of the same load pair (§5.1).
//!
//! Smaller-than-full tables (§6.6) are supported: entries are indexed by
//! `preg % entries` and tagged with the full physical register id so a
//! conflict can never reveal a wrong address — a conflict only *loses* a
//! reveal opportunity, which is always safe.

use core::fmt;

use recon_isa::snap::{SnapError, SnapReader, SnapWriter};

/// One LPT entry: active bit, owning physical register (tag), and the
/// address accessed by the load that wrote that register.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct Entry {
    active: bool,
    tag: u32,
    addr: u64,
}

/// Statistics accumulated by a [`LoadPairTable`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LptStats {
    /// Committed loads processed.
    pub loads_committed: u64,
    /// Load pairs detected (reveals requested).
    pub pairs_detected: u64,
    /// Lookups that found an entry whose tag did not match (lost
    /// opportunities due to a reduced table size).
    pub tag_conflicts: u64,
    /// Entries invalidated by non-load writers.
    pub deactivations: u64,
    /// Installs skipped because the loaded word was already revealed.
    pub installs_skipped_revealed: u64,
}

/// The Load-Pair Table.
///
/// ```
/// use recon::LoadPairTable;
///
/// let mut lpt = LoadPairTable::full(180); // Intel Skylake: 180 pregs
///
/// // LD1: `load p7, [0x100]` commits (no pair: p3 not active).
/// assert_eq!(lpt.commit_load(7, Some(3), 0x100, false), None);
/// // LD2: `load p9, [p7]` commits — direct dependence on LD1:
/// // the pair is detected and LD1's address 0x100 is revealed.
/// assert_eq!(lpt.commit_load(9, Some(7), 0x2000, false), Some(0x100));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct LoadPairTable {
    entries: Vec<Entry>,
    stats: LptStats,
}

impl LoadPairTable {
    /// A full-size LPT: one entry per physical register; no conflicts.
    ///
    /// # Panics
    ///
    /// Panics if `num_pregs` is zero.
    #[must_use]
    pub fn full(num_pregs: usize) -> Self {
        Self::with_entries(num_pregs)
    }

    /// An LPT with an arbitrary number of entries, indexed by
    /// `preg % entries` and tagged with the physical register id (the
    /// §6.6 reduced configuration). With `entries >= num_pregs` this is
    /// equivalent to [`LoadPairTable::full`].
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn with_entries(entries: usize) -> Self {
        assert!(entries > 0, "LPT must have at least one entry");
        LoadPairTable {
            entries: vec![Entry::default(); entries],
            stats: LptStats::default(),
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has zero entries (never true — construction
    /// requires at least one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> LptStats {
        self.stats
    }

    fn slot(&self, preg: u32) -> usize {
        preg as usize % self.entries.len()
    }

    /// Read-only probe of the entry under `preg`: the address installed
    /// by a committed producer load, if the entry is active and its tag
    /// matches. Used by stall forensics; bumps no statistics.
    #[must_use]
    pub fn peek(&self, preg: u32) -> Option<u64> {
        let e = self.entries[self.slot(preg)];
        (e.active && e.tag == preg).then_some(e.addr)
    }

    /// Looks up `preg`; returns the stored address if active and the tag
    /// matches.
    fn lookup(&mut self, preg: u32) -> Option<u64> {
        let e = self.entries[self.slot(preg)];
        if !e.active {
            return None;
        }
        if e.tag != preg {
            self.stats.tag_conflicts += 1;
            return None;
        }
        Some(e.addr)
    }

    /// Processes a committing **load**.
    ///
    /// * `dst_preg` — the load's destination physical register.
    /// * `addr_src_preg` — the physical register that supplied the load's
    ///   base address (`None` for an immediate-only address).
    /// * `load_addr` — the (word-aligned) address this load accessed.
    /// * `dst_word_revealed` — whether the word this load read was
    ///   already marked revealed in the cache (install is skipped then,
    ///   per §5.1: "if the load address has not already been revealed").
    ///
    /// Returns `Some(first_load_addr)` when a direct-dependence load pair
    /// is detected: the caller must send a reveal request for that
    /// address to the cache hierarchy.
    pub fn commit_load(
        &mut self,
        dst_preg: u32,
        addr_src_preg: Option<u32>,
        load_addr: u64,
        dst_word_revealed: bool,
    ) -> Option<u64> {
        self.stats.loads_committed += 1;
        // 2. check the source register: was it written by a committed load?
        let pair = addr_src_preg.and_then(|src| self.lookup(src));
        if pair.is_some() {
            self.stats.pairs_detected += 1;
        }
        // 1. install this load's address under its destination register.
        if dst_word_revealed {
            // The word is already revealed: a future consumer load would
            // reveal an already-revealed address. Skip the install but
            // still deactivate any stale entry for correctness.
            self.stats.installs_skipped_revealed += 1;
            let slot = self.slot(dst_preg);
            if self.entries[slot].tag == dst_preg {
                self.entries[slot].active = false;
            }
        } else {
            let slot = self.slot(dst_preg);
            self.entries[slot] = Entry {
                active: true,
                tag: dst_preg,
                addr: load_addr,
            };
        }
        pair
    }

    /// Processes a committing **multi-source load** (§5.1.1): looks up
    /// *each* address-source operand — a pair can be detected per
    /// operand — then installs the destination. Returns the addresses
    /// to reveal (0..=2).
    pub fn commit_load_multi(
        &mut self,
        dst_preg: u32,
        addr_src_pregs: [Option<u32>; 2],
        load_addr: u64,
        dst_word_revealed: bool,
    ) -> [Option<u64>; 2] {
        self.stats.loads_committed += 1;
        let mut out = [None, None];
        for (slot, src) in addr_src_pregs.into_iter().enumerate() {
            out[slot] = src.and_then(|s| self.lookup(s));
            if out[slot].is_some() {
                self.stats.pairs_detected += 1;
            }
        }
        if dst_word_revealed {
            self.stats.installs_skipped_revealed += 1;
            let islot = self.slot(dst_preg);
            if self.entries[islot].tag == dst_preg {
                self.entries[islot].active = false;
            }
        } else {
            let islot = self.slot(dst_preg);
            self.entries[islot] = Entry {
                active: true,
                tag: dst_preg,
                addr: load_addr,
            };
        }
        out
    }

    /// Processes a committing **non-load** instruction that writes
    /// `dst_preg`: clears the active bit so the register no longer
    /// appears to hold a loaded value.
    pub fn commit_writer(&mut self, dst_preg: u32) {
        let slot = self.slot(dst_preg);
        let e = &mut self.entries[slot];
        // Clear regardless of tag: after this commit, the slot's previous
        // occupant is stale only if tags collide, and clearing a colliding
        // entry merely loses a reveal opportunity (always safe).
        if e.active && e.tag == dst_preg {
            self.stats.deactivations += 1;
            e.active = false;
        }
    }

    /// Clears every entry (e.g. on context switch / address-space change).
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            e.active = false;
        }
    }

    /// Invariant sweep: every *active* entry must be internally
    /// consistent — its tag must map to the slot it sits in
    /// (`tag % entries == slot`, the only way [`LoadPairTable::lookup`]
    /// can ever find it), the tag must name a real physical register,
    /// and the stored address must be word-aligned (commit masks all
    /// load addresses with `& !7` before installing).
    ///
    /// Violations are appended to `out` with `site` as the location
    /// label. A clean table appends nothing.
    pub fn audit(&self, site: &str, num_pregs: usize, out: &mut Vec<crate::AuditViolation>) {
        for (slot, e) in self.entries.iter().enumerate() {
            if !e.active {
                continue;
            }
            if e.tag as usize % self.entries.len() != slot {
                out.push(crate::AuditViolation::new(
                    "lpt-slot-map",
                    format!("{site}.lpt"),
                    format!(
                        "slot {slot}: tag p{} maps to slot {} ({} entries)",
                        e.tag,
                        e.tag as usize % self.entries.len(),
                        self.entries.len()
                    ),
                ));
            }
            if e.tag as usize >= num_pregs {
                out.push(crate::AuditViolation::new(
                    "lpt-tag-range",
                    format!("{site}.lpt"),
                    format!(
                        "slot {slot}: tag p{} >= {num_pregs} physical registers",
                        e.tag
                    ),
                ));
            }
            if e.addr % crate::WORD_BYTES != 0 {
                out.push(crate::AuditViolation::new(
                    "lpt-addr-aligned",
                    format!("{site}.lpt"),
                    format!("slot {slot}: address {:#x} is not word-aligned", e.addr),
                ));
            }
        }
    }

    /// Soft-error injection hook: flips one deterministic-random bit in
    /// one entry (address bit, tag bit, or the active bit). Returns a
    /// description of the flip, or `None` for an empty table.
    ///
    /// Only the fault-injection campaign calls this; normal operation
    /// never mutates an entry outside commit.
    pub fn inject_flip(&mut self, rng: &mut recon_isa::rng::SplitMix64) -> Option<String> {
        use recon_isa::rng::Rng as _;
        if self.entries.is_empty() {
            return None;
        }
        let slot = rng.next_u64() as usize % self.entries.len();
        let e = &mut self.entries[slot];
        match rng.next_u64() % 3 {
            0 => {
                let bit = rng.next_u64() % 64;
                e.addr ^= 1u64 << bit;
                Some(format!("lpt slot {slot}: addr bit {bit} flipped"))
            }
            1 => {
                let bit = rng.next_u64() % 32;
                e.tag ^= 1u32 << bit;
                Some(format!("lpt slot {slot}: tag bit {bit} flipped"))
            }
            _ => {
                e.active = !e.active;
                Some(format!("lpt slot {slot}: active bit flipped"))
            }
        }
    }

    /// Serializes the table (entries in index order plus stats).
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"LPT1");
        w.u64(self.entries.len() as u64);
        for e in &self.entries {
            w.bool(e.active);
            w.u32(e.tag);
            w.u64(e.addr);
        }
        let s = self.stats;
        w.u64(s.loads_committed);
        w.u64(s.pairs_detected);
        w.u64(s.tag_conflicts);
        w.u64(s.deactivations);
        w.u64(s.installs_skipped_revealed);
    }

    /// Reconstructs a table from [`LoadPairTable::save_snap`] bytes.
    ///
    /// # Errors
    ///
    /// Propagates decode errors, including a zero-entry count (which
    /// construction forbids).
    pub fn load_snap(r: &mut SnapReader<'_>) -> Result<LoadPairTable, SnapError> {
        r.expect_tag(b"LPT1")?;
        let count = r.u64()? as usize;
        if count == 0 {
            return Err(SnapError {
                what: "LPT with zero entries".into(),
                offset: r.offset(),
            });
        }
        let mut entries = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            entries.push(Entry {
                active: r.bool()?,
                tag: r.u32()?,
                addr: r.u64()?,
            });
        }
        let stats = LptStats {
            loads_committed: r.u64()?,
            pairs_detected: r.u64()?,
            tag_conflicts: r.u64()?,
            deactivations: r.u64()?,
            installs_skipped_revealed: r.u64()?,
        };
        Ok(LoadPairTable { entries, stats })
    }
}

impl fmt::Debug for LoadPairTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoadPairTable")
            .field("entries", &self.entries.len())
            .field("active", &self.entries.iter().filter(|e| e.active).count())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_simple_pair() {
        let mut lpt = LoadPairTable::full(64);
        assert_eq!(lpt.commit_load(5, None, 0x100, false), None);
        assert_eq!(lpt.commit_load(6, Some(5), 0x2000, false), Some(0x100));
        assert_eq!(lpt.stats().pairs_detected, 1);
        assert_eq!(lpt.stats().loads_committed, 2);
    }

    #[test]
    fn non_load_writer_breaks_pair() {
        let mut lpt = LoadPairTable::full(64);
        lpt.commit_load(5, None, 0x100, false);
        lpt.commit_writer(5); // e.g. an add writing p5 commits
        assert_eq!(lpt.commit_load(6, Some(5), 0x2000, false), None);
        assert_eq!(lpt.stats().deactivations, 1);
    }

    #[test]
    fn chained_pairs_detect_each_link() {
        // LD a -> LD b -> LD c: two pairs (a,b) and (b,c).
        let mut lpt = LoadPairTable::full(64);
        assert_eq!(lpt.commit_load(1, None, 0x10, false), None);
        assert_eq!(lpt.commit_load(2, Some(1), 0x20, false), Some(0x10));
        assert_eq!(lpt.commit_load(3, Some(2), 0x30, false), Some(0x20));
        assert_eq!(lpt.stats().pairs_detected, 2);
    }

    #[test]
    fn install_skipped_when_already_revealed() {
        let mut lpt = LoadPairTable::full(64);
        // LD1 loads a word that is already revealed: no install.
        lpt.commit_load(5, None, 0x100, true);
        assert_eq!(lpt.commit_load(6, Some(5), 0x2000, false), None);
        assert_eq!(lpt.stats().installs_skipped_revealed, 1);
    }

    #[test]
    fn revealed_install_clears_stale_entry() {
        let mut lpt = LoadPairTable::full(64);
        lpt.commit_load(5, None, 0x100, false); // installs 0x100 under p5
        lpt.commit_load(5, None, 0x200, true); // p5 rewritten, now-revealed word
                                               // A consumer of p5 must NOT reveal the stale 0x100.
        assert_eq!(lpt.commit_load(6, Some(5), 0x2000, false), None);
    }

    #[test]
    fn reduced_table_tag_conflict_is_safe() {
        // 4 entries: pregs 1 and 5 collide (1 % 4 == 5 % 4).
        let mut lpt = LoadPairTable::with_entries(4);
        lpt.commit_load(1, None, 0x100, false);
        // preg 5's lookup hits slot 1 but the tag (1) mismatches -> no
        // reveal of the wrong address.
        assert_eq!(lpt.commit_load(6, Some(5), 0x2000, false), None);
        assert_eq!(lpt.stats().tag_conflicts, 1);
    }

    #[test]
    fn reduced_table_conflict_eviction_loses_opportunity_only() {
        let mut lpt = LoadPairTable::with_entries(4);
        lpt.commit_load(1, None, 0x100, false);
        lpt.commit_load(5, None, 0x200, false); // evicts p1's entry (same slot)
                                                // Consumer of p1 finds p5's tag: conflict, no (wrong) reveal.
        assert_eq!(lpt.commit_load(6, Some(1), 0x2000, false), None);
        // Consumer of p5 still works.
        assert_eq!(lpt.commit_load(7, Some(5), 0x3000, false), Some(0x200));
    }

    #[test]
    fn writer_with_conflicting_tag_does_not_deactivate() {
        let mut lpt = LoadPairTable::with_entries(4);
        lpt.commit_load(1, None, 0x100, false);
        lpt.commit_writer(5); // collides with slot 1 but tag differs
        assert_eq!(lpt.commit_load(6, Some(1), 0x2000, false), Some(0x100));
    }

    #[test]
    fn multi_source_detects_a_pair_per_operand() {
        let mut lpt = LoadPairTable::full(64);
        lpt.commit_load(1, None, 0x100, false); // base producer
        lpt.commit_load(2, None, 0x200, false); // index producer
        let out = lpt.commit_load_multi(3, [Some(1), Some(2)], 0x3000, false);
        assert_eq!(out, [Some(0x100), Some(0x200)]);
        assert_eq!(lpt.stats().pairs_detected, 2);
    }

    #[test]
    fn multi_source_with_one_alu_operand_detects_one() {
        let mut lpt = LoadPairTable::full(64);
        lpt.commit_load(1, None, 0x100, false);
        lpt.commit_writer(2); // index came from ALU
        let out = lpt.commit_load_multi(3, [Some(1), Some(2)], 0x3000, false);
        assert_eq!(out, [Some(0x100), None]);
    }

    #[test]
    fn multi_source_installs_its_own_address() {
        let mut lpt = LoadPairTable::full(64);
        lpt.commit_load_multi(3, [None, None], 0x3000, false);
        assert_eq!(lpt.commit_load(4, Some(3), 0x4000, false), Some(0x3000));
    }

    #[test]
    fn flush_clears_everything() {
        let mut lpt = LoadPairTable::full(8);
        lpt.commit_load(1, None, 0x100, false);
        lpt.flush();
        assert_eq!(lpt.commit_load(2, Some(1), 0x200, false), None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = LoadPairTable::with_entries(0);
    }

    #[test]
    fn full_table_never_conflicts() {
        let mut lpt = LoadPairTable::full(256);
        for p in 0..256u32 {
            lpt.commit_load(p, None, 0x1000 + u64::from(p) * 8, false);
        }
        for p in 0..256u32 {
            // Lookup of the source happens before the destination install,
            // so using dst == src reads the original address.
            assert_eq!(
                lpt.commit_load(p, Some(p), 0x9000, false),
                Some(0x1000 + u64::from(p) * 8),
                "preg {p}"
            );
        }
        assert_eq!(lpt.stats().tag_conflicts, 0);
    }
}

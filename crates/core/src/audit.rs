//! Shared vocabulary of the runtime invariant auditor.
//!
//! The auditor (driven from `recon-sim`) sweeps the microarchitectural
//! state of every layer at a configurable cycle cadence and reports any
//! internal inconsistency — a silently flipped reveal-mask bit, a
//! corrupted directory entry, an LPT slot whose tag cannot map there —
//! as a structured [`AuditViolation`]. Each layer owns its own checks
//! (it alone can see its private state); this module only defines the
//! common violation record they all emit.
//!
//! A violation is *never* a modeled architectural event: every check is
//! an invariant the simulator maintains by construction, so a non-empty
//! sweep means state was corrupted from outside the model (a soft
//! error, a bad restore, or a simulator bug).

use core::fmt;

/// One invariant violation found by an audit sweep.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AuditViolation {
    /// Stable name of the violated invariant (e.g. `"swmr"`,
    /// `"lpt-slot-map"`, `"rob-seq-contiguous"`).
    pub invariant: String,
    /// Which structure the violation was found in (e.g. `"core2.lpt"`,
    /// `"mem.dir"`, `"core0.l1"`).
    pub site: String,
    /// Human-readable forensics: which line/entry, expected vs found.
    pub detail: String,
}

impl AuditViolation {
    /// Builds a violation record.
    #[must_use]
    pub fn new(
        invariant: impl Into<String>,
        site: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        AuditViolation {
            invariant: invariant.into(),
            site: site.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.site, self.invariant, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_site_invariant_and_detail() {
        let v = AuditViolation::new("swmr", "mem.dir", "line 0x40: two owners");
        let s = v.to_string();
        assert!(s.contains("swmr"), "{s}");
        assert!(s.contains("mem.dir"), "{s}");
        assert!(s.contains("0x40"), "{s}");
    }
}

//! Property-based tests of the ReCon core data structures.

use proptest::prelude::*;

use recon::{LoadPairTable, RevealMask, WORDS_PER_LINE};

/// Operations applied to both a full-size LPT (the oracle) and a
/// reduced, tagged LPT.
#[derive(Clone, Debug)]
enum LptOp {
    /// `commit_load(dst, Some(src), addr, revealed)`
    Load {
        dst: u32,
        src: u32,
        addr: u64,
        revealed: bool,
    },
    /// `commit_writer(dst)`
    Writer { dst: u32 },
}

fn lpt_op() -> impl Strategy<Value = LptOp> {
    prop_oneof![
        (0u32..64, 0u32..64, 0u64..0x1000, proptest::bool::ANY).prop_map(
            |(dst, src, a, revealed)| LptOp::Load {
                dst,
                src,
                addr: a * 8,
                revealed
            }
        ),
        (0u32..64).prop_map(|dst| LptOp::Writer { dst }),
    ]
}

proptest! {
    /// A reduced, tagged LPT may *miss* pairs the full table detects,
    /// but every pair it does detect must reveal exactly the address
    /// the full table would reveal (conflicts are only ever lost
    /// opportunities — §6.6).
    #[test]
    fn reduced_lpt_never_reveals_a_wrong_address(
        ops in proptest::collection::vec(lpt_op(), 1..200),
        entries in 1usize..32,
    ) {
        let mut full = LoadPairTable::full(64);
        let mut small = LoadPairTable::with_entries(entries);
        for op in ops {
            match op {
                LptOp::Load { dst, src, addr, revealed } => {
                    let oracle = full.commit_load(dst, Some(src), addr, revealed);
                    let got = small.commit_load(dst, Some(src), addr, revealed);
                    if let Some(got_addr) = got {
                        prop_assert_eq!(
                            Some(got_addr), oracle,
                            "reduced table revealed a wrong address"
                        );
                    }
                }
                LptOp::Writer { dst } => {
                    full.commit_writer(dst);
                    small.commit_writer(dst);
                }
            }
        }
        prop_assert!(small.stats().pairs_detected <= full.stats().pairs_detected);
    }

    /// OR-merging masks is monotone: no reveal is ever lost by a merge.
    #[test]
    fn mask_merge_is_monotone(a in 0u8..=255, b in 0u8..=255) {
        let mut m = RevealMask::from_bits(a);
        m.merge_or(RevealMask::from_bits(b));
        for w in 0..WORDS_PER_LINE {
            if RevealMask::from_bits(a).is_revealed(w) || RevealMask::from_bits(b).is_revealed(w) {
                prop_assert!(m.is_revealed(w));
            }
        }
        prop_assert_eq!(m.bits(), a | b);
    }

    /// Reveal/conceal act on single words only.
    #[test]
    fn reveal_conceal_are_word_local(bits in 0u8..=255, w in 0usize..WORDS_PER_LINE) {
        let mut m = RevealMask::from_bits(bits);
        m.reveal(w);
        for other in 0..WORDS_PER_LINE {
            if other != w {
                prop_assert_eq!(
                    m.is_revealed(other),
                    RevealMask::from_bits(bits).is_revealed(other)
                );
            }
        }
        m.conceal(w);
        for other in 0..WORDS_PER_LINE {
            if other != w {
                prop_assert_eq!(
                    m.is_revealed(other),
                    RevealMask::from_bits(bits).is_revealed(other)
                );
            }
        }
        prop_assert!(!m.is_revealed(w));
    }

    /// A full-size LPT detects a pair iff the most recent committed
    /// writer of the source register was a load (reference semantics
    /// against a simple model).
    #[test]
    fn full_lpt_matches_reference_model(
        ops in proptest::collection::vec(lpt_op(), 1..200),
    ) {
        let mut lpt = LoadPairTable::full(64);
        // Reference: last committed writer of each preg.
        let mut last: Vec<Option<(u64, bool)>> = vec![None; 64]; // (addr, revealed_install_skipped)
        for op in ops {
            match op {
                LptOp::Load { dst, src, addr, revealed } => {
                    let expect = match last[src as usize] {
                        Some((a, false)) => Some(a),
                        _ => None,
                    };
                    let got = lpt.commit_load(dst, Some(src), addr, revealed);
                    prop_assert_eq!(got, expect);
                    last[dst as usize] = Some((addr, revealed));
                }
                LptOp::Writer { dst } => {
                    lpt.commit_writer(dst);
                    last[dst as usize] = None;
                }
            }
        }
    }
}

//! # recon-sim
//!
//! The full-system simulator and experiment runner of the ReCon
//! reproduction: multicore [`System`]s (out-of-order cores + coherent
//! hierarchy + functional memory), the five-way scheme matrix
//! (baseline / NDA / NDA+ReCon / STT / STT+ReCon), and the metrics
//! the paper reports (normalized IPC, normalized execution time,
//! tainted-load ratios, overhead reductions).
//!
//! ```no_run
//! use recon_sim::{Experiment, SchemeMatrix};
//! use recon_workloads::{find, Scale, Suite};
//!
//! let bench = find(Suite::Spec2017, "xalancbmk", Scale::Quick).unwrap();
//! let matrix: SchemeMatrix = Experiment::default().run_matrix(&bench);
//! println!(
//!     "STT: {:.3}  STT+ReCon: {:.3} (normalized IPC)",
//!     matrix.normalized_ipc(&matrix.stt),
//!     matrix.normalized_ipc(&matrix.stt_recon),
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod ckpt;
pub mod error;
pub mod experiment;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod speed;
pub mod stall;
pub mod system;

pub use audit::{
    run_campaign, AuditCampaignReport, AuditReport, CampaignConfig, FaultSite,
    DEFAULT_AUDIT_EVERY_CYCLES,
};
pub use error::{Budget, DeadlineReason, SimError, DEFAULT_WATCHDOG_CYCLES};
pub use experiment::{
    geomean, mean, overhead_from_norm_ipc, overhead_reduction, Experiment, SchemeMatrix,
};
pub use runner::{
    jobs_from_env, parallel_map, run_batch, run_batch_budgeted, BatchResults, JobTiming,
};
pub use speed::{AuditSpeed, MicroBench, SchemeSpeed, SpeedReport};
pub use stall::StallReport;
pub use system::{System, SystemResult};

//! Parallel experiment runner: a std-only scoped-thread worker pool
//! that executes batches of (benchmark, scheme) jobs across cores.
//!
//! Simulated runs are independent pure functions of (workload, config),
//! so a batch parallelizes trivially: jobs go into a queue, workers
//! drain it, and results land in a slot table indexed by job id —
//! output order is therefore *deterministic* regardless of worker count
//! or scheduling. The runner also deduplicates jobs before dispatch, so
//! the unsafe baseline a figure needs under both the NDA and STT trios
//! runs once per benchmark, not once per trio.
//!
//! Per-job wall-clock timings are recorded and can be written to
//! `BENCH_runner.json` for cross-host speedup comparisons.

use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use recon_secure::SecureConfig;
use recon_workloads::Benchmark;

use crate::experiment::{Experiment, SchemeMatrix};
use crate::system::SystemResult;

/// Runs `f` over `items` on `jobs` worker threads, returning outputs in
/// input order (deterministic for any `jobs`).
///
/// Workers pull from a shared queue, so long jobs do not serialize
/// behind short ones. With `jobs <= 1` (or a single item) everything
/// runs on the caller's thread. A panicking job propagates out of the
/// scope join, as it would serially.
pub fn parallel_map<I, O, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                // Take the lock only to pop; run the job outside it.
                let job = queue.lock().unwrap().pop_front();
                let Some((idx, item)) = job else { break };
                let out = f(item);
                slots.lock().unwrap()[idx] = Some(out);
            });
        }
    });
    let slots = slots.into_inner().unwrap();
    slots
        .into_iter()
        .map(|o| o.expect("every queued job ran"))
        .collect()
}

/// Worker count from `RECON_JOBS`, defaulting to the host's available
/// parallelism (1 if unknown).
///
/// # Errors
///
/// An invalid `RECON_JOBS` (not a positive integer, e.g. `abc` or `0`)
/// is an error naming the accepted form — it is never silently coerced
/// to a serial run.
pub fn jobs_from_env() -> Result<usize, String> {
    match std::env::var("RECON_JOBS") {
        Ok(v) => v.trim().parse().ok().filter(|&j| j >= 1).ok_or_else(|| {
            format!("RECON_JOBS must be a positive integer (worker count), got '{v}'")
        }),
        Err(std::env::VarError::NotPresent) => {
            Ok(std::thread::available_parallelism().map_or(1, usize::from))
        }
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("RECON_JOBS must be a positive integer (worker count), got non-unicode".into())
        }
    }
}

/// Wall-clock timing of one executed (benchmark, scheme) job.
#[derive(Clone, Debug)]
pub struct JobTiming {
    /// Benchmark name.
    pub bench: &'static str,
    /// Scheme configuration the job ran under.
    pub config: SecureConfig,
    /// Host wall-clock seconds the job took.
    pub seconds: f64,
    /// Simulated cycles, for correlating host time with simulated work.
    pub cycles: u64,
}

/// Results of a deduplicated batch of (benchmark, scheme) jobs.
#[derive(Clone, Debug)]
pub struct BatchResults {
    /// One entry per *unique* job, in deterministic (benchmark-major)
    /// order: (benchmark name, config, result).
    entries: Vec<(&'static str, SecureConfig, SystemResult)>,
    /// Per-job timings, same order as the entries.
    pub timings: Vec<JobTiming>,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub jobs: usize,
}

impl BatchResults {
    /// The result of `bench` under `config`, if it was in the batch.
    #[must_use]
    pub fn get(&self, bench: &str, config: SecureConfig) -> Option<&SystemResult> {
        self.entries
            .iter()
            .find(|(b, c, _)| *b == bench && *c == config)
            .map(|(_, _, r)| r)
    }

    /// Like [`get`](Self::get) but panicking with a clear message —
    /// for harnesses that know what they asked for.
    #[must_use]
    pub fn expect(&self, bench: &str, config: SecureConfig) -> &SystemResult {
        self.get(bench, config)
            .unwrap_or_else(|| panic!("batch has no result for {bench} under {config}"))
    }

    /// Number of unique jobs executed.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.entries.len()
    }

    /// Sum of per-job wall times — the serial-execution estimate. Note
    /// that per-job times are measured while workers share the host's
    /// cores, so on an oversubscribed machine this overstates a true
    /// serial run; compare `wall_seconds` of a `--jobs 1` invocation
    /// against a `--jobs N` one for an honest speedup figure.
    #[must_use]
    pub fn serial_seconds(&self) -> f64 {
        self.timings.iter().map(|t| t.seconds).sum()
    }

    /// Parallel speedup estimate: serial-sum over batch wall time (see
    /// the [`serial_seconds`](Self::serial_seconds) caveat).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.serial_seconds() / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Writes the batch timing report as JSON (hand-rolled: the build
    /// is dependency-free). Overwrites `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{{")?;
        writeln!(f, "  \"jobs\": {},", self.jobs)?;
        writeln!(f, "  \"unique_jobs\": {},", self.job_count())?;
        writeln!(f, "  \"wall_seconds\": {:.6},", self.wall_seconds)?;
        writeln!(f, "  \"serial_seconds\": {:.6},", self.serial_seconds())?;
        writeln!(f, "  \"speedup\": {:.3},", self.speedup())?;
        writeln!(f, "  \"job_timings\": [")?;
        let n = self.timings.len();
        for (i, t) in self.timings.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            writeln!(
                f,
                "    {{\"bench\": \"{}\", \"scheme\": \"{}\", \"seconds\": {:.6}, \"cycles\": {}}}{comma}",
                t.bench,
                t.config.label(),
                t.seconds,
                t.cycles
            )?;
        }
        writeln!(f, "  ]")?;
        writeln!(f, "}}")?;
        Ok(())
    }
}

/// Runs every `bench` × `config` combination on `jobs` workers,
/// deduplicating repeated (bench, config) requests (notably the unsafe
/// baseline shared by several scheme trios).
#[must_use]
pub fn run_batch(
    exp: &Experiment,
    benches: &[Benchmark],
    configs: &[SecureConfig],
    jobs: usize,
) -> BatchResults {
    let mut work: Vec<(&Benchmark, SecureConfig)> = Vec::new();
    for b in benches {
        let mut seen: Vec<SecureConfig> = Vec::new();
        for &c in configs {
            if !seen.contains(&c) {
                seen.push(c);
                work.push((b, c));
            }
        }
    }
    let start = Instant::now();
    let ran = parallel_map(jobs, work, |(b, c)| {
        let t0 = Instant::now();
        let r = exp.run(&b.workload, c);
        let seconds = t0.elapsed().as_secs_f64();
        (b.name, c, r, seconds)
    });
    let wall_seconds = start.elapsed().as_secs_f64();
    let mut entries = Vec::with_capacity(ran.len());
    let mut timings = Vec::with_capacity(ran.len());
    for (bench, config, result, seconds) in ran {
        timings.push(JobTiming {
            bench,
            config,
            seconds,
            cycles: result.cycles,
        });
        entries.push((bench, config, result));
    }
    BatchResults {
        entries,
        timings,
        wall_seconds,
        jobs,
    }
}

/// The five-configuration matrix of the paper's evaluation.
const MATRIX: [SecureConfig; 5] = [
    SecureConfig {
        kind: recon_secure::SchemeKind::Unsafe,
        recon: false,
    },
    SecureConfig {
        kind: recon_secure::SchemeKind::Nda,
        recon: false,
    },
    SecureConfig {
        kind: recon_secure::SchemeKind::Nda,
        recon: true,
    },
    SecureConfig {
        kind: recon_secure::SchemeKind::Stt,
        recon: false,
    },
    SecureConfig {
        kind: recon_secure::SchemeKind::Stt,
        recon: true,
    },
];

impl Experiment {
    /// Runs the five-way scheme matrix on every benchmark with `jobs`
    /// parallel workers, returning matrices in benchmark order plus the
    /// batch timing report.
    #[must_use]
    pub fn run_matrices(
        &self,
        benches: &[Benchmark],
        jobs: usize,
    ) -> (Vec<SchemeMatrix>, BatchResults) {
        let batch = run_batch(self, benches, &MATRIX, jobs);
        let matrices = benches
            .iter()
            .map(|b| SchemeMatrix {
                name: b.name,
                baseline: batch
                    .expect(b.name, SecureConfig::unsafe_baseline())
                    .clone(),
                nda: batch.expect(b.name, SecureConfig::nda()).clone(),
                nda_recon: batch.expect(b.name, SecureConfig::nda_recon()).clone(),
                stt: batch.expect(b.name, SecureConfig::stt()).clone(),
                stt_recon: batch.expect(b.name, SecureConfig::stt_recon()).clone(),
            })
            .collect();
        (matrices, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(4, (0..100).collect(), |i: u64| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_serial_fallback() {
        let out = parallel_map(1, vec![3, 1, 2], |i: i32| i + 1);
        assert_eq!(out, vec![4, 2, 3]);
    }

    #[test]
    fn parallel_map_more_workers_than_items() {
        let out = parallel_map(16, vec![1, 2], |i: i32| i * i);
        assert_eq!(out, vec![1, 4]);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn parallel_map_propagates_panics() {
        // A job panic must fail the whole batch (it resurfaces from the
        // scope join), never silently drop the job's slot.
        let _ = parallel_map(2, vec![0, 1], |i: i32| {
            assert!(i != 1, "job failure propagates");
            i
        });
    }

    #[test]
    fn jobs_env_parsing() {
        // Only exercises the default branch (the variable is unset in
        // the test environment; setting it would race other tests).
        assert!(jobs_from_env().expect("unset env defaults") >= 1);
    }
}

//! Parallel experiment runner: a std-only scoped-thread worker pool
//! that executes batches of (benchmark, scheme) jobs across cores.
//!
//! Simulated runs are independent pure functions of (workload, config),
//! so a batch parallelizes trivially: jobs go into a queue, workers
//! drain it, and results land in a slot table indexed by job id —
//! output order is therefore *deterministic* regardless of worker count
//! or scheduling. The runner also deduplicates jobs before dispatch, so
//! the unsafe baseline a figure needs under both the NDA and STT trios
//! runs once per benchmark, not once per trio.
//!
//! Per-job wall-clock timings are recorded and can be written to
//! `BENCH_runner.json` for cross-host speedup comparisons.

use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use recon_secure::SecureConfig;
use recon_workloads::Benchmark;

use crate::ckpt::{self, CkptContext};
use crate::error::Budget;
use crate::experiment::{Experiment, SchemeMatrix};
use crate::system::SystemResult;

/// Runs `f` over `items` on `jobs` worker threads, returning outputs in
/// input order (deterministic for any `jobs`).
///
/// Workers pull from a shared queue, so long jobs do not serialize
/// behind short ones. With `jobs <= 1` (or a single item) everything
/// runs on the caller's thread. A panicking job propagates out of the
/// scope join, as it would serially.
pub fn parallel_map<I, O, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                // Take the lock only to pop; run the job outside it.
                let job = queue.lock().unwrap().pop_front();
                let Some((idx, item)) = job else { break };
                let out = f(item);
                slots.lock().unwrap()[idx] = Some(out);
            });
        }
    });
    let slots = slots.into_inner().unwrap();
    slots
        .into_iter()
        .map(|o| o.expect("every queued job ran"))
        .collect()
}

/// Worker count from `RECON_JOBS`, defaulting to the host's available
/// parallelism (1 if unknown).
///
/// # Errors
///
/// An invalid `RECON_JOBS` (not a positive integer, e.g. `abc` or `0`)
/// is an error naming the accepted form — it is never silently coerced
/// to a serial run.
pub fn jobs_from_env() -> Result<usize, String> {
    match std::env::var("RECON_JOBS") {
        Ok(v) => v.trim().parse().ok().filter(|&j| j >= 1).ok_or_else(|| {
            format!("RECON_JOBS must be a positive integer (worker count), got '{v}'")
        }),
        Err(std::env::VarError::NotPresent) => {
            Ok(std::thread::available_parallelism().map_or(1, usize::from))
        }
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("RECON_JOBS must be a positive integer (worker count), got non-unicode".into())
        }
    }
}

/// Runs `f`, catching a panic and retrying once (transient failures —
/// e.g. a host hiccup — get a second chance); a second panic becomes
/// the job's failure message. Panic backtraces still print to stderr.
fn catch_retry<O>(f: impl Fn() -> O) -> Result<O, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f)) {
        Ok(o) => Ok(o),
        Err(_) => match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f)) {
            Ok(o) => Ok(o),
            Err(p) => Err(panic_text(p)),
        },
    }
}

/// Extracts the human-readable message from a panic payload.
fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    match p.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Wall-clock timing of one executed (benchmark, scheme) job.
#[derive(Clone, Debug)]
pub struct JobTiming {
    /// Benchmark name.
    pub bench: &'static str,
    /// Scheme configuration the job ran under.
    pub config: SecureConfig,
    /// Host wall-clock seconds the job took.
    pub seconds: f64,
    /// Simulated cycles, for correlating host time with simulated work.
    pub cycles: u64,
    /// Committed instructions (plus any functional warmup), the basis
    /// of the job's MIPS figure.
    pub instructions: u64,
    /// Whether the job failed (panicked twice) instead of producing a
    /// result.
    pub failed: bool,
}

impl JobTiming {
    /// Simulated throughput in MIPS (million instructions per host
    /// second); 0 for failed or instantaneous jobs.
    #[must_use]
    pub fn mips(&self) -> f64 {
        if self.seconds > 0.0 {
            self.instructions as f64 / 1e6 / self.seconds
        } else {
            0.0
        }
    }
}

/// Aggregate checkpoint activity across a checkpointed batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchCkptStats {
    /// Jobs skipped entirely because a completion record existed.
    pub cached: usize,
    /// Jobs resumed from a mid-run checkpoint.
    pub resumed: usize,
    /// Checkpoint files written.
    pub written: u64,
    /// Corrupt/torn checkpoint files dropped during recovery.
    pub dropped_corrupt: u64,
    /// Checkpoint files GC'd past the keep window.
    pub gc_deleted: u64,
}

/// Results of a deduplicated batch of (benchmark, scheme) jobs.
///
/// A job that panics (after one retry) is recorded as `failed` instead
/// of aborting the batch: the remaining jobs still run and report.
#[derive(Clone, Debug)]
pub struct BatchResults {
    /// One entry per *unique* job, in deterministic (benchmark-major)
    /// order: (benchmark name, config, result-or-failure-message).
    entries: Vec<(&'static str, SecureConfig, Result<SystemResult, String>)>,
    /// Per-job timings, same order as the entries.
    pub timings: Vec<JobTiming>,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub jobs: usize,
    /// Checkpoint activity, when the batch ran with a checkpoint dir.
    pub ckpt: Option<BatchCkptStats>,
}

impl BatchResults {
    /// The result of `bench` under `config`, if it was in the batch and
    /// succeeded.
    #[must_use]
    pub fn get(&self, bench: &str, config: SecureConfig) -> Option<&SystemResult> {
        self.entries
            .iter()
            .find(|(b, c, _)| *b == bench && *c == config)
            .and_then(|(_, _, r)| r.as_ref().ok())
    }

    /// Like [`get`](Self::get) but panicking with a clear message —
    /// for harnesses that know what they asked for.
    #[must_use]
    pub fn expect(&self, bench: &str, config: SecureConfig) -> &SystemResult {
        match self
            .entries
            .iter()
            .find(|(b, c, _)| *b == bench && *c == config)
        {
            Some((_, _, Ok(r))) => r,
            Some((_, _, Err(e))) => panic!("job {bench} under {config} failed: {e}"),
            None => panic!("batch has no result for {bench} under {config}"),
        }
    }

    /// Jobs that failed (after a retry), as (bench, config, message).
    #[must_use]
    pub fn failures(&self) -> Vec<(&'static str, SecureConfig, &str)> {
        self.entries
            .iter()
            .filter_map(|(b, c, r)| r.as_ref().err().map(|e| (*b, *c, e.as_str())))
            .collect()
    }

    /// Number of failed jobs.
    #[must_use]
    pub fn failed_count(&self) -> usize {
        self.entries.iter().filter(|(_, _, r)| r.is_err()).count()
    }

    /// Number of unique jobs executed.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.entries.len()
    }

    /// Sum of per-job wall times — the serial-execution estimate. Note
    /// that per-job times are measured while workers share the host's
    /// cores, so on an oversubscribed machine this overstates a true
    /// serial run; compare `wall_seconds` of a `--jobs 1` invocation
    /// against a `--jobs N` one for an honest speedup figure.
    #[must_use]
    pub fn serial_seconds(&self) -> f64 {
        self.timings.iter().map(|t| t.seconds).sum()
    }

    /// Parallel speedup estimate: serial-sum over batch wall time (see
    /// the [`serial_seconds`](Self::serial_seconds) caveat).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.serial_seconds() / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Writes the batch timing report as JSON (hand-rolled: the build
    /// is dependency-free). Overwrites `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{{")?;
        writeln!(f, "  \"jobs\": {},", self.jobs)?;
        writeln!(f, "  \"unique_jobs\": {},", self.job_count())?;
        writeln!(f, "  \"failed_jobs\": {},", self.failed_count())?;
        writeln!(f, "  \"wall_seconds\": {:.6},", self.wall_seconds)?;
        writeln!(f, "  \"serial_seconds\": {:.6},", self.serial_seconds())?;
        writeln!(f, "  \"speedup\": {:.3},", self.speedup())?;
        writeln!(f, "  \"job_timings\": [")?;
        let n = self.timings.len();
        for (i, t) in self.timings.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            writeln!(
                f,
                "    {{\"bench\": \"{}\", \"scheme\": \"{}\", \"seconds\": {:.6}, \"cycles\": {}, \"instructions\": {}, \"mips\": {:.3}, \"failed\": {}}}{comma}",
                t.bench,
                t.config.label(),
                t.seconds,
                t.cycles,
                t.instructions,
                t.mips(),
                t.failed
            )?;
        }
        writeln!(f, "  ]")?;
        writeln!(f, "}}")?;
        Ok(())
    }
}

/// Runs every `bench` × `config` combination on `jobs` workers,
/// deduplicating repeated (bench, config) requests (notably the unsafe
/// baseline shared by several scheme trios).
#[must_use]
pub fn run_batch(
    exp: &Experiment,
    benches: &[Benchmark],
    configs: &[SecureConfig],
    jobs: usize,
) -> BatchResults {
    run_batch_inner(exp, benches, configs, jobs, &Budget::default(), None)
}

/// [`run_batch`] under an explicit per-job [`Budget`] — the path
/// `recon suite --fast-forward` uses to warm every job functionally
/// before its detailed region.
#[must_use]
pub fn run_batch_budgeted(
    exp: &Experiment,
    benches: &[Benchmark],
    configs: &[SecureConfig],
    jobs: usize,
    budget: &Budget,
) -> BatchResults {
    run_batch_inner(exp, benches, configs, jobs, budget, None)
}

/// [`run_batch`] with crash-safe persistence: each job checkpoints into
/// `ctx.dir` and records its completion there, so re-running the same
/// batch (same `tag`) after a kill skips finished jobs outright and
/// resumes partial ones from their last checkpoint. `tag` namespaces
/// the batch (e.g. `"spec2017/quick"`); it is folded into every job's
/// config digest along with the cadence.
#[must_use]
pub fn run_batch_checkpointed(
    exp: &Experiment,
    benches: &[Benchmark],
    configs: &[SecureConfig],
    jobs: usize,
    ctx: &CkptContext,
    tag: &str,
) -> BatchResults {
    run_batch_inner(
        exp,
        benches,
        configs,
        jobs,
        &Budget::default(),
        Some((ctx, tag)),
    )
}

/// [`run_batch_checkpointed`] under an explicit [`Budget`]. A
/// fast-forward warmup is folded into each job's config digest (it
/// changes every result), so warmed and unwarmed batches never share
/// completion records.
#[must_use]
pub fn run_batch_checkpointed_budgeted(
    exp: &Experiment,
    benches: &[Benchmark],
    configs: &[SecureConfig],
    jobs: usize,
    budget: &Budget,
    ctx: &CkptContext,
    tag: &str,
) -> BatchResults {
    run_batch_inner(exp, benches, configs, jobs, budget, Some((ctx, tag)))
}

fn run_batch_inner(
    exp: &Experiment,
    benches: &[Benchmark],
    configs: &[SecureConfig],
    jobs: usize,
    budget: &Budget,
    persist: Option<(&CkptContext, &str)>,
) -> BatchResults {
    let mut work: Vec<(&Benchmark, SecureConfig)> = Vec::new();
    for b in benches {
        let mut seen: Vec<SecureConfig> = Vec::new();
        for &c in configs {
            if !seen.contains(&c) {
                seen.push(c);
                work.push((b, c));
            }
        }
    }
    let start = Instant::now();
    let ran = parallel_map(jobs, work, |(b, c)| {
        let t0 = Instant::now();
        // One panicking experiment must not abort the suite: catch it,
        // retry once, and report it as a failed entry.
        let (outcome, info) = match persist {
            None => (
                catch_retry(|| exp.try_run(&b.workload, c, budget))
                    .and_then(|r| r.map_err(|e| e.to_string())),
                None,
            ),
            Some((ctx, tag)) => {
                let scheme = c.to_string();
                let cadence = ctx.cadence.to_string();
                let mut parts = vec![tag, b.name, scheme.as_str(), cadence.as_str()];
                // Folded in only when set, so unwarmed batches keep
                // their pre-existing on-disk records.
                let ff = budget.fast_forward.map(|n| n.to_string());
                if let Some(ff) = ff.as_deref() {
                    parts.push(ff);
                }
                let digest = ckpt::config_digest(&parts);
                let caught = catch_retry(|| {
                    ckpt::run_with_checkpoints(
                        exp,
                        &b.workload,
                        c,
                        budget,
                        ctx,
                        &[
                            ("kind".to_string(), "suite-job".to_string()),
                            ("tag".to_string(), tag.to_string()),
                            ("bench".to_string(), b.name.to_string()),
                            ("scheme".to_string(), scheme.clone()),
                            ("cadence".to_string(), ctx.cadence.to_string()),
                        ],
                        digest,
                    )
                });
                match caught {
                    Ok((r, info)) => (r.map_err(|e| e.to_string()), Some(info)),
                    Err(msg) => (Err(msg), None),
                }
            }
        };
        let seconds = t0.elapsed().as_secs_f64();
        (b.name, c, outcome, info, seconds)
    });
    let wall_seconds = start.elapsed().as_secs_f64();
    let mut entries = Vec::with_capacity(ran.len());
    let mut timings = Vec::with_capacity(ran.len());
    let mut ckpt_stats = persist.map(|_| BatchCkptStats::default());
    for (bench, config, outcome, info, seconds) in ran {
        if let (Some(s), Some(i)) = (ckpt_stats.as_mut(), info) {
            s.cached += usize::from(i.result_cached);
            s.resumed += usize::from(i.resumed_from_cycle.is_some());
            s.written += i.checkpoints_written;
            s.dropped_corrupt += i.dropped_corrupt;
            s.gc_deleted += i.gc_deleted;
        }
        timings.push(JobTiming {
            bench,
            config,
            seconds,
            cycles: outcome.as_ref().map_or(0, |r| r.cycles),
            instructions: outcome.as_ref().map_or(0, SystemResult::committed),
            failed: outcome.is_err(),
        });
        entries.push((bench, config, outcome));
    }
    BatchResults {
        entries,
        timings,
        wall_seconds,
        jobs,
        ckpt: ckpt_stats,
    }
}

/// The five-configuration matrix of the paper's evaluation.
const MATRIX: [SecureConfig; 5] = [
    SecureConfig {
        kind: recon_secure::SchemeKind::Unsafe,
        recon: false,
    },
    SecureConfig {
        kind: recon_secure::SchemeKind::Nda,
        recon: false,
    },
    SecureConfig {
        kind: recon_secure::SchemeKind::Nda,
        recon: true,
    },
    SecureConfig {
        kind: recon_secure::SchemeKind::Stt,
        recon: false,
    },
    SecureConfig {
        kind: recon_secure::SchemeKind::Stt,
        recon: true,
    },
];

impl Experiment {
    /// Runs the five-way scheme matrix on every benchmark with `jobs`
    /// parallel workers, returning matrices in benchmark order plus the
    /// batch timing report.
    ///
    /// A benchmark with any failed job is omitted from the matrices
    /// (its failure stays visible in [`BatchResults::failures`]); the
    /// other benchmarks' matrices are unaffected.
    #[must_use]
    pub fn run_matrices(
        &self,
        benches: &[Benchmark],
        jobs: usize,
    ) -> (Vec<SchemeMatrix>, BatchResults) {
        self.run_matrices_budgeted(benches, jobs, &Budget::default())
    }

    /// [`run_matrices`](Self::run_matrices) under an explicit per-job
    /// [`Budget`] (fuel, deadlines, functional fast-forward warmup).
    #[must_use]
    pub fn run_matrices_budgeted(
        &self,
        benches: &[Benchmark],
        jobs: usize,
        budget: &Budget,
    ) -> (Vec<SchemeMatrix>, BatchResults) {
        let batch = run_batch_budgeted(self, benches, &MATRIX, jobs, budget);
        (Self::matrices_from(benches, &batch), batch)
    }

    /// [`run_matrices`](Self::run_matrices) with crash-safe suite
    /// resume: jobs checkpoint into `ctx.dir` under `tag`, completed
    /// jobs short-circuit on a re-run, and partial jobs resume from
    /// their last checkpoint (see [`run_batch_checkpointed`]).
    #[must_use]
    pub fn run_matrices_checkpointed(
        &self,
        benches: &[Benchmark],
        jobs: usize,
        ctx: &CkptContext,
        tag: &str,
    ) -> (Vec<SchemeMatrix>, BatchResults) {
        let batch = run_batch_checkpointed(self, benches, &MATRIX, jobs, ctx, tag);
        (Self::matrices_from(benches, &batch), batch)
    }

    /// [`run_matrices_checkpointed`](Self::run_matrices_checkpointed)
    /// under an explicit per-job [`Budget`].
    #[must_use]
    pub fn run_matrices_checkpointed_budgeted(
        &self,
        benches: &[Benchmark],
        jobs: usize,
        budget: &Budget,
        ctx: &CkptContext,
        tag: &str,
    ) -> (Vec<SchemeMatrix>, BatchResults) {
        let batch = run_batch_checkpointed_budgeted(self, benches, &MATRIX, jobs, budget, ctx, tag);
        (Self::matrices_from(benches, &batch), batch)
    }

    fn matrices_from(benches: &[Benchmark], batch: &BatchResults) -> Vec<SchemeMatrix> {
        benches
            .iter()
            .filter(|b| MATRIX.iter().all(|&c| batch.get(b.name, c).is_some()))
            .map(|b| SchemeMatrix {
                name: b.name,
                baseline: batch
                    .expect(b.name, SecureConfig::unsafe_baseline())
                    .clone(),
                nda: batch.expect(b.name, SecureConfig::nda()).clone(),
                nda_recon: batch.expect(b.name, SecureConfig::nda_recon()).clone(),
                stt: batch.expect(b.name, SecureConfig::stt()).clone(),
                stt_recon: batch.expect(b.name, SecureConfig::stt_recon()).clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(4, (0..100).collect(), |i: u64| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_serial_fallback() {
        let out = parallel_map(1, vec![3, 1, 2], |i: i32| i + 1);
        assert_eq!(out, vec![4, 2, 3]);
    }

    #[test]
    fn parallel_map_more_workers_than_items() {
        let out = parallel_map(16, vec![1, 2], |i: i32| i * i);
        assert_eq!(out, vec![1, 4]);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn parallel_map_propagates_panics() {
        // A job panic must fail the whole batch (it resurfaces from the
        // scope join), never silently drop the job's slot.
        let _ = parallel_map(2, vec![0, 1], |i: i32| {
            assert!(i != 1, "job failure propagates");
            i
        });
    }

    #[test]
    fn catch_retry_recovers_from_one_panic() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let attempts = AtomicU32::new(0);
        let out = catch_retry(|| {
            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient");
            }
            7
        });
        assert_eq!(out, Ok(7));
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn catch_retry_reports_persistent_panics() {
        let out: Result<(), String> = catch_retry(|| panic!("always broken"));
        assert_eq!(out.unwrap_err(), "always broken");
    }

    #[test]
    fn failing_job_does_not_abort_the_batch() {
        use recon_workloads::{find, Scale, Suite};
        // An impossible cycle budget makes `Experiment::run` panic
        // ("run exceeded ... cycles"); the batch must survive, record
        // the failure per job, and keep zero matrices for the bench.
        let exp = Experiment {
            max_cycles: 1,
            ..Experiment::default()
        };
        let benches = vec![find(Suite::Spec2017, "leela", Scale::Quick).unwrap()];
        let (matrices, batch) = exp.run_matrices(&benches, 2);
        assert!(matrices.is_empty(), "failed bench is omitted");
        assert_eq!(batch.failed_count(), batch.job_count());
        let failures = batch.failures();
        assert!(!failures.is_empty());
        assert!(
            failures[0].2.contains("exceeded"),
            "failure message survives: {}",
            failures[0].2
        );
        assert!(batch.get("leela", SecureConfig::stt()).is_none());
        assert!(batch.timings.iter().all(|t| t.failed));
    }

    #[test]
    fn jobs_env_parsing() {
        // Only exercises the default branch (the variable is unset in
        // the test environment; setting it would race other tests).
        assert!(jobs_from_env().expect("unset env defaults") >= 1);
    }
}

//! The liveness watchdog's forensic output: a [`StallReport`]
//! aggregating every core's [`CoreStallInfo`] at the moment forward
//! progress stopped.
//!
//! The report is plain data with a stable binary encoding
//! ([`StallReport::save_snap`]) so `recon serve` can persist it inside
//! a failed job's `.res` record and explain an orphaned job's death
//! after a restart without re-running the job.

use core::fmt;

use recon_cpu::CoreStallInfo;
use recon_isa::snap::{SnapError, SnapReader, SnapWriter};

/// Why a budgeted run was declared stalled, per core.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StallReport {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Watchdog window: cycles without a commit on any core.
    pub window: u64,
    /// Per-core forensics.
    pub cores: Vec<CoreStallInfo>,
}

impl StallReport {
    /// One-line summary naming the first stuck core's head instruction —
    /// the string error paths (`Display for SimError`) surface.
    #[must_use]
    pub fn summary(&self) -> String {
        let culprit = self
            .cores
            .iter()
            .find(|c| !c.halted)
            .or_else(|| self.cores.first());
        match culprit.and_then(|c| c.head.as_ref().map(|h| (c, h))) {
            Some((c, h)) => format!(
                "liveness stall: no commit on any core for {} cycles (at cycle {}); \
                 core {} head `{}` — {}",
                self.window, self.cycle, c.core, h.inst, h.wait
            ),
            None => format!(
                "liveness stall: no commit on any core for {} cycles (at cycle {})",
                self.window, self.cycle
            ),
        }
    }

    /// Serializes the report (a `SRP1`-tagged stream).
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"SRP1");
        w.u64(self.cycle);
        w.u64(self.window);
        w.u32(self.cores.len() as u32);
        for c in &self.cores {
            c.save_snap(w);
        }
    }

    /// Serializes the report to a standalone byte vector.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.save_snap(&mut w);
        w.into_bytes()
    }

    /// Reconstructs a report from [`StallReport::save_snap`] bytes.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a truncated or corrupt stream.
    pub fn load_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.expect_tag(b"SRP1")?;
        let cycle = r.u64()?;
        let window = r.u64()?;
        let n = r.u32()? as usize;
        let mut cores = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            cores.push(CoreStallInfo::load_snap(r)?);
        }
        Ok(StallReport {
            cycle,
            window,
            cores,
        })
    }

    /// Reconstructs a report from a standalone byte vector.
    ///
    /// # Errors
    ///
    /// As [`StallReport::load_snap`], plus trailing-bytes detection.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(bytes);
        let report = Self::load_snap(&mut r)?;
        if !r.is_exhausted() {
            return Err(SnapError {
                what: "trailing bytes after stall report".to_string(),
                offset: r.offset(),
            });
        }
        Ok(report)
    }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "LIVENESS STALL at cycle {}: no instruction committed on any core \
             for {} cycles",
            self.cycle, self.window
        )?;
        for c in &self.cores {
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_cpu::{HeadForensics, QueueOcc};

    fn sample() -> StallReport {
        StallReport {
            cycle: 123_456,
            window: 10_000,
            cores: vec![CoreStallInfo {
                core: 0,
                committed: 17,
                halted: false,
                out_of_fuel: false,
                fetch_pc: 5,
                queues: vec![QueueOcc {
                    name: "sq".into(),
                    len: 1,
                    cap: 8,
                }],
                shadows: 1,
                guards_active: 0,
                head: Some(HeadForensics {
                    seq: 3,
                    pc: 2,
                    inst: "amoadd r3, [r1+0x0], r2".into(),
                    status: "waiting-issue".into(),
                    wait: "amo at head blocked on 1 younger store(s)".into(),
                    addr: Some(0x4000),
                    speculative: false,
                    delayed_by_scheme: false,
                    guarded_operands: vec![],
                    l1_state: None,
                    l2_state: None,
                    dir_state: Some("Owned".into()),
                    word_revealed: Some(false),
                    lpt_entry: None,
                }),
            }],
        }
    }

    #[test]
    fn bytes_round_trip() {
        let report = sample();
        let back = StallReport::from_bytes(&report.to_bytes()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn summary_names_the_culprit() {
        let s = sample().summary();
        assert!(s.contains("amoadd"), "{s}");
        assert!(s.contains("10000 cycles"), "{s}");
    }

    #[test]
    fn display_is_multiline_forensics() {
        let text = sample().to_string();
        assert!(text.contains("LIVENESS STALL"), "{text}");
        assert!(text.contains("wait reason"), "{text}");
    }

    #[test]
    fn corrupt_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(StallReport::from_bytes(&bytes).is_err());
    }
}

//! The full-system simulator: N out-of-order cores sharing a coherent
//! memory hierarchy and a functional memory.

use std::sync::Arc;

use recon::ReconConfig;
use recon_cpu::{Core, CoreConfig, CoreStats};
use recon_isa::{run_decoded, ArchReg, ArchState, DecodedProgram, SparseMem, NUM_ARCH_REGS};
use recon_mem::{MemConfig, MemStats, MemorySystem};
use recon_secure::SecureConfig;
use recon_workloads::Workload;

use recon_isa::hash::FxHasher;
use recon_isa::snap::{SnapError, SnapReader, SnapWriter};
use std::hash::Hasher;

use crate::audit::{AuditReport, FaultSite};
use crate::error::{Budget, DeadlineReason, SimError, CANCEL_CHECK_INTERVAL};
use crate::stall::StallReport;

/// Upper bound on the cycles a checkpoint drain may take. With fetch
/// paused every shadow resolves and the window empties within a few
/// thousand cycles on any configuration; a core frozen out-of-fuel
/// mid-flight can never drain, and this bound turns that into a
/// skipped checkpoint instead of a hang.
pub const DRAIN_BOUND_CYCLES: u64 = 1 << 16;

/// Result of a completed (or timed-out) system run.
///
/// `PartialEq`/`Eq` compare every counter — the equality the
/// checkpoint/resume tests use to assert a resumed run is
/// indistinguishable from an uninterrupted one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SystemResult {
    /// Whether every core committed its `halt` within the budget.
    pub completed: bool,
    /// Cycles elapsed until the last core finished (the PARSEC "ROI
    /// execution time" metric).
    pub cycles: u64,
    /// Per-core statistics.
    pub cores: Vec<CoreStats>,
    /// Memory-system statistics.
    pub mem: MemStats,
}

impl SystemResult {
    /// Total committed instructions across cores.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.cores.iter().map(|c| c.committed).sum()
    }

    /// Aggregate IPC (all cores' instructions over total cycles).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed() as f64 / self.cycles as f64
        }
    }

    /// Total committed guarded ("tainted") loads across cores
    /// (Figure 7).
    #[must_use]
    pub fn guarded_loads(&self) -> u64 {
        self.cores.iter().map(|c| c.guarded_loads_committed).sum()
    }

    /// Total pipeline-trace events dropped by the cores' ring buffers
    /// (zero unless tracing was enabled and overflowed).
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.cores.iter().map(|c| c.trace_dropped).sum()
    }

    /// Serializes the result (every counter) — used by the suite
    /// runner's completion records, so a restarted suite can skip
    /// finished jobs and still print their numbers.
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"SRES");
        w.bool(self.completed);
        w.u64(self.cycles);
        w.u32(self.cores.len() as u32);
        for c in &self.cores {
            for v in [
                c.cycles,
                c.committed,
                c.loads_committed,
                c.stores_committed,
                c.branches_committed,
                c.branch_mispredicts,
                c.memory_violations,
                c.squashed,
                c.guarded_loads,
                c.guarded_loads_committed,
                c.loads_delayed_by_scheme,
                c.scheme_delay_cycles,
                c.revealed_loads_committed,
                c.reveals_requested,
                c.lpt.loads_committed,
                c.lpt.pairs_detected,
                c.lpt.tag_conflicts,
                c.lpt.deactivations,
                c.lpt.installs_skipped_revealed,
                c.trace_dropped,
                c.stall_head_load,
                c.stall_head_store,
                c.stall_head_branch,
                c.stall_head_other,
                c.stall_empty,
            ] {
                w.u64(v);
            }
        }
        let m = &self.mem;
        for v in [
            m.l1_hits,
            m.l2_hits,
            m.llc_hits,
            m.mem_fetches,
            m.stores_performed,
            m.upgrades,
            m.remote_forwards,
            m.invalidations,
            m.reveals_set,
            m.reveals_dropped,
            m.conceals,
            m.revealed_loads,
            m.mask_bits_lost_inval,
            m.mask_bits_lost_evict,
            m.mask_merges,
        ] {
            w.u64(v);
        }
    }

    /// Reconstructs a result from [`SystemResult::save_snap`] bytes.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a truncated or corrupt stream.
    pub fn load_snap(r: &mut SnapReader<'_>) -> Result<SystemResult, SnapError> {
        r.expect_tag(b"SRES")?;
        let completed = r.bool()?;
        let cycles = r.u64()?;
        let n = r.u32()? as usize;
        let mut cores = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let mut c = CoreStats::default();
            for v in [
                &mut c.cycles,
                &mut c.committed,
                &mut c.loads_committed,
                &mut c.stores_committed,
                &mut c.branches_committed,
                &mut c.branch_mispredicts,
                &mut c.memory_violations,
                &mut c.squashed,
                &mut c.guarded_loads,
                &mut c.guarded_loads_committed,
                &mut c.loads_delayed_by_scheme,
                &mut c.scheme_delay_cycles,
                &mut c.revealed_loads_committed,
                &mut c.reveals_requested,
                &mut c.lpt.loads_committed,
                &mut c.lpt.pairs_detected,
                &mut c.lpt.tag_conflicts,
                &mut c.lpt.deactivations,
                &mut c.lpt.installs_skipped_revealed,
                &mut c.trace_dropped,
                &mut c.stall_head_load,
                &mut c.stall_head_store,
                &mut c.stall_head_branch,
                &mut c.stall_head_other,
                &mut c.stall_empty,
            ] {
                *v = r.u64()?;
            }
            cores.push(c);
        }
        let mut m = MemStats::default();
        for v in [
            &mut m.l1_hits,
            &mut m.l2_hits,
            &mut m.llc_hits,
            &mut m.mem_fetches,
            &mut m.stores_performed,
            &mut m.upgrades,
            &mut m.remote_forwards,
            &mut m.invalidations,
            &mut m.reveals_set,
            &mut m.reveals_dropped,
            &mut m.conceals,
            &mut m.revealed_loads,
            &mut m.mask_bits_lost_inval,
            &mut m.mask_bits_lost_evict,
            &mut m.mask_merges,
        ] {
            *v = r.u64()?;
        }
        Ok(SystemResult {
            completed,
            cycles,
            cores,
            mem: m,
        })
    }
}

/// A multicore system executing one [`Workload`].
#[derive(Debug)]
pub struct System {
    cores: Vec<Core>,
    mem: MemorySystem,
    data: SparseMem,
    cycle: u64,
    /// One shared decode of the workload program (threads share code and
    /// differ only in entry point); also drives functional fast-forward.
    decoded: Arc<DecodedProgram>,
    /// Instructions executed functionally by [`System::fast_forward`]
    /// (not part of [`SystemResult`] — warmup is not timed work).
    ff_instructions: u64,
}

impl System {
    /// Builds a system sized for the workload's thread count.
    #[must_use]
    pub fn new(
        workload: &Workload,
        core_cfg: CoreConfig,
        mem_cfg: MemConfig,
        secure: SecureConfig,
        recon_cfg: ReconConfig,
    ) -> Self {
        // ReCon's hierarchy metadata is only active when the scheme
        // stacks ReCon on top; the data structures are sized regardless.
        let effective_recon = if secure.recon {
            recon_cfg
        } else {
            ReconConfig {
                enabled: false,
                ..recon_cfg
            }
        };
        let n = workload.num_threads();
        let mem = MemorySystem::new(n, mem_cfg, effective_recon);
        let data = SparseMem::from_image(&workload.program.image);
        // Decode the program once; every core fetches from the same
        // pre-decoded stream (threads differ only in entry point).
        let decoded = Arc::new(DecodedProgram::decode(&workload.program));
        let cores = workload
            .threads
            .iter()
            .enumerate()
            .map(|(id, spec)| {
                let mut core = Core::with_decoded(
                    id,
                    Arc::clone(&decoded),
                    spec.entry,
                    core_cfg,
                    secure,
                    effective_recon,
                );
                for &(reg, value) in &spec.seeds {
                    core.seed_reg(reg, value);
                }
                core
            })
            .collect();
        System {
            cores,
            mem,
            data,
            cycle: 0,
            decoded,
            ff_instructions: 0,
        }
    }

    /// Immutable access to the cores (for observation-based analyses).
    #[must_use]
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Mutable access to the cores (e.g. to enable observation capture).
    pub fn cores_mut(&mut self) -> &mut [Core] {
        &mut self.cores
    }

    /// The shared functional memory.
    #[must_use]
    pub fn data(&self) -> &SparseMem {
        &self.data
    }

    /// The shared memory system.
    #[must_use]
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to the memory system (e.g. to enable the
    /// transaction log or the reveal-soundness checker).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Cycles simulated so far.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total instructions committed across all cores — the liveness
    /// watchdog's forward-progress signal.
    #[must_use]
    pub fn committed_total(&self) -> u64 {
        self.cores.iter().map(Core::committed).sum()
    }

    /// Collects a forensic [`StallReport`] for the current state:
    /// every core's queue occupancies, scheme state, and ROB-head wait
    /// reason (with MESI/directory/LPT context from the shared memory
    /// system).
    #[must_use]
    pub fn stall_report(&self, window: u64) -> StallReport {
        StallReport {
            cycle: self.cycle,
            window,
            cores: self
                .cores
                .iter()
                .map(|core| core.stall_info(&self.mem))
                .collect(),
        }
    }

    /// Instructions executed functionally by [`System::fast_forward`]
    /// so far (zero for a purely detailed run).
    #[must_use]
    pub fn fast_forwarded(&self) -> u64 {
        self.ff_instructions
    }

    /// Sweeps every layer's internal invariants (memory hierarchy,
    /// directory, every core — see [`recon::audit`]). Empty on an
    /// uncorrupted system; any entry means state was damaged from
    /// outside the model.
    #[must_use]
    pub fn audit(&self) -> Vec<recon::AuditViolation> {
        let mut out = self.mem.audit();
        for core in &self.cores {
            out.extend(core.audit());
        }
        out
    }

    /// Injects one seeded single-bit soft error at `site`. Returns a
    /// description of the flipped state, or `None` when the site holds
    /// no target right now (e.g. an empty LPT) or the site is not an
    /// in-system one ([`FaultSite::CkptBytes`] corrupts serialized
    /// bytes, which the caller owns).
    pub fn inject_fault(
        &mut self,
        site: FaultSite,
        rng: &mut recon_isa::rng::SplitMix64,
    ) -> Option<String> {
        use recon_isa::rng::Rng as _;
        match site {
            FaultSite::RevealMask => self.mem.inject_mask_flip(rng),
            FaultSite::DirState => self.mem.inject_dir_flip(rng),
            FaultSite::Lpt => {
                let core = (rng.next_u64() as usize) % self.cores.len();
                self.cores[core].inject_lpt_flip(rng)
            }
            FaultSite::Regfile => {
                let core = (rng.next_u64() as usize) % self.cores.len();
                self.cores[core].inject_reg_flip(rng)
            }
            FaultSite::CkptBytes => None,
        }
    }

    /// Digest of the architectural state: the functional memory image
    /// plus every core's architectural registers. Two runs of the same
    /// workload ending with equal digests produced the same program
    /// outcome — the campaign's masked-fault criterion.
    #[must_use]
    pub fn arch_digest(&self) -> u64 {
        let mut w = SnapWriter::new();
        self.data.save_snap(&mut w);
        let mut h = FxHasher::default();
        h.write(w.as_slice());
        for core in &self.cores {
            for i in 1..NUM_ARCH_REGS {
                h.write_u64(core.arch_read(ArchReg::new(i)));
            }
        }
        h.finish()
    }

    /// Executes up to `n` instructions *functionally* — straight-line
    /// interpretation over architectural state (register files + the
    /// shared [`SparseMem`]), touching no ROB/LSQ/rename/predictor/cache
    /// structures — then repositions every core to continue in detailed
    /// mode from the reached architectural point.
    ///
    /// Threads are interleaved round-robin, one instruction per live
    /// core per round, so spin-based synchronization (barriers,
    /// producer/consumer flags) makes progress exactly as it would under
    /// cycle-level interleaving. Returns the number of instructions
    /// actually executed (less than `n` once every thread has halted).
    ///
    /// Cache, LPT, predictor, and reveal-mask state is untouched: the
    /// detailed region starts from cold microarchitectural state at a
    /// warm architectural point — the documented mode-switch semantics
    /// (see DESIGN.md §11). Timing results therefore differ from a
    /// from-scratch detailed run (that is the point); architectural
    /// results do not.
    ///
    /// # Panics
    ///
    /// Panics if the program faults functionally (misaligned access,
    /// pc out of range) — workloads are validated to execute cleanly —
    /// or if called mid-run (after any cycle has been simulated).
    pub fn fast_forward(&mut self, n: u64) -> u64 {
        assert_eq!(
            self.cycle, 0,
            "fast-forward must precede detailed simulation"
        );
        let mut states: Vec<ArchState> = self
            .cores
            .iter()
            .map(|core| {
                let mut st = ArchState::at_pc(core.fetch_pc());
                for i in 1..NUM_ARCH_REGS {
                    let r = ArchReg::new(i);
                    st.write(r, core.arch_read(r));
                }
                st
            })
            .collect();
        let decoded = Arc::clone(&self.decoded);
        let mut remaining = n;
        let mut executed = 0u64;
        while remaining > 0 {
            let mut progressed = false;
            for st in &mut states {
                if remaining == 0 {
                    break;
                }
                if st.halted {
                    continue;
                }
                match run_decoded(&decoded, st, &mut self.data, 1) {
                    Ok(steps) if steps > 0 => {
                        progressed = true;
                        executed += steps;
                        remaining -= steps;
                    }
                    Ok(_) => {}
                    Err(e) => panic!("functional fast-forward faulted at pc {}: {e}", st.pc),
                }
            }
            if !progressed {
                break; // every thread halted
            }
        }
        for (core, st) in self.cores.iter_mut().zip(&states) {
            for i in 1..NUM_ARCH_REGS {
                let r = ArchReg::new(i);
                core.seed_reg(r, st.read(r));
            }
            core.warm_restart(st.pc, st.halted);
        }
        self.ff_instructions += executed;
        executed
    }

    /// Pauses fetch on every core and ticks until all pipelines drain
    /// (or `bound` cycles elapse). Returns `true` once every core's
    /// window is empty — the only state a snapshot may be taken in.
    ///
    /// With fetch paused nothing new dispatches, so in-flight branches
    /// and stores resolve, shadows retire, guards deactivate, and the
    /// ROB/LSQ/store buffers empty. A core frozen out-of-fuel mid-window
    /// cannot drain; the bound converts that into a `false` return
    /// (checkpoint skipped) rather than a hang. Fetch is resumed before
    /// returning either way.
    pub fn drain(&mut self, bound: u64) -> bool {
        for core in &mut self.cores {
            core.pause_fetch(true);
        }
        let mut spent = 0u64;
        while !self.cores.iter().all(Core::pipeline_empty) && spent < bound {
            self.tick();
            spent += 1;
        }
        for core in &mut self.cores {
            core.pause_fetch(false);
        }
        self.cores.iter().all(Core::pipeline_empty)
    }

    /// Serializes the complete architectural + persistent-metadata state
    /// of the system: cycle counter, functional memory, cache tags +
    /// reveal masks + directory, and every core's registers, predictors,
    /// guard table, LPT, and statistics.
    ///
    /// Must be called at a drained boundary (see [`System::drain`]):
    /// there, no speculative state exists, so none needs capturing.
    /// All collections serialize in canonical (sorted) order — the same
    /// state always produces the same bytes.
    ///
    /// Each section (cycle + functional memory, memory system, cores)
    /// is sealed with an `SCHK` checksum over its bytes, so a bit flip
    /// *inside* the stream — corruption the envelope of an `RCK1` file
    /// cannot see, e.g. state damaged before the envelope was written —
    /// is rejected at restore and names the corrupted section.
    #[must_use]
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let seal = |w: &mut SnapWriter, start: &mut usize| {
            let mut h = FxHasher::default();
            h.write(&w.as_slice()[*start..]);
            w.tag(b"SCHK");
            w.u64(h.finish());
            *start = w.len();
        };
        let mut w = SnapWriter::new();
        w.tag(b"SYSS");
        let mut start = w.len();
        w.u64(self.cycle);
        self.data.save_snap(&mut w);
        seal(&mut w, &mut start);
        self.mem.save_snap(&mut w);
        seal(&mut w, &mut start);
        w.u32(self.cores.len() as u32);
        for core in &self.cores {
            core.save_snap(&mut w);
        }
        seal(&mut w, &mut start);
        w.into_bytes()
    }

    /// Restores state captured by [`System::snapshot_bytes`] into this
    /// freshly constructed system (same workload and configuration —
    /// configuration is re-derived from the run setup, not stored).
    ///
    /// # Errors
    ///
    /// Fails on a truncated or corrupt stream, or if the snapshot's
    /// shape (core count, cache geometry) does not match this system.
    /// On error the system is partially restored and must be discarded.
    pub fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let check = |r: &mut SnapReader<'_>, start: &mut usize, name: &str| {
            let end = r.offset();
            r.expect_tag(b"SCHK")?;
            let stored = r.u64()?;
            let mut h = FxHasher::default();
            h.write(&bytes[*start..end]);
            if h.finish() != stored {
                return Err(SnapError {
                    what: format!("snapshot section '{name}' checksum mismatch (corrupt state)"),
                    offset: end,
                });
            }
            *start = r.offset();
            Ok(())
        };
        let mut r = SnapReader::new(bytes);
        r.expect_tag(b"SYSS")?;
        let mut start = r.offset();
        self.cycle = r.u64()?;
        self.data = recon_isa::SparseMem::load_snap(&mut r)?;
        check(&mut r, &mut start, "data")?;
        self.mem.load_snap(&mut r)?;
        check(&mut r, &mut start, "mem")?;
        let n = r.u32()? as usize;
        if n != self.cores.len() {
            return Err(SnapError {
                what: format!("snapshot has {n} cores, system has {}", self.cores.len()),
                offset: r.offset(),
            });
        }
        for core in &mut self.cores {
            core.load_snap(&mut r)?;
        }
        check(&mut r, &mut start, "cores")?;
        if !r.is_exhausted() {
            return Err(SnapError {
                what: "trailing bytes after system snapshot".to_string(),
                offset: r.offset(),
            });
        }
        Ok(())
    }

    /// Advances every core one cycle. Returns `true` while any core is
    /// still running.
    pub fn tick(&mut self) -> bool {
        let now = self.cycle;
        self.cycle += 1;
        self.mem.set_now(now);
        let mut busy = false;
        for core in &mut self.cores {
            busy |= core.tick(&mut self.mem, &mut self.data, now);
        }
        busy
    }

    /// Runs until every core halts or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> SystemResult {
        match self.run_budgeted(max_cycles, &Budget::default()) {
            Ok(r) => r,
            Err(e) => e.into_partial(),
        }
    }

    /// Runs until every core halts, a budget is exhausted, or the run
    /// is cancelled — the deadline-aware entry point behind
    /// `recon serve`'s per-job deadlines.
    ///
    /// `budget.max_cycles` overrides `max_cycles` when set. A run that
    /// stops early returns [`SimError`] carrying the partial
    /// [`SystemResult`] (with `completed == false`); the system itself
    /// stays intact, so stats remain readable afterwards.
    ///
    /// # Errors
    ///
    /// [`SimError::DeadlineExceeded`] when the fuel or cycle budget ran
    /// out, [`SimError::Cancelled`] when the cancellation flag was
    /// raised mid-run.
    pub fn run_budgeted(
        &mut self,
        max_cycles: u64,
        budget: &Budget,
    ) -> Result<SystemResult, SimError> {
        self.run_budgeted_checkpointed(max_cycles, budget, |_, _| {})
    }

    /// [`System::run_budgeted`] with periodic checkpointing: every
    /// `budget.checkpoint_every_cycles` cycles the run drains the
    /// pipelines, snapshots the system, and hands `(cycle, bytes)` to
    /// `sink`. With no cadence set, `sink` is never called and the run
    /// is identical to `run_budgeted`.
    ///
    /// Restoring a snapshot into a fresh system and calling this again
    /// (same configuration and cadence, `fuel: None` so the restored
    /// per-core fuel is kept) continues the run exactly: the resumed
    /// run's result is equal to the uninterrupted checkpointed run's.
    ///
    /// A drain that fails to empty the pipelines within
    /// [`DRAIN_BOUND_CYCLES`] (a core frozen out-of-fuel) skips that
    /// checkpoint; the run itself continues unaffected.
    ///
    /// # Errors
    ///
    /// Exactly as [`System::run_budgeted`].
    pub fn run_budgeted_checkpointed(
        &mut self,
        max_cycles: u64,
        budget: &Budget,
        mut sink: impl FnMut(u64, &[u8]),
    ) -> Result<SystemResult, SimError> {
        let max_cycles = budget.max_cycles.unwrap_or(max_cycles);
        // Functional warmup applies once, at the very start of a fresh
        // run; a system restored from a checkpoint (cycle > 0, work
        // already committed) carries its warmup inside the snapshot.
        if let Some(ff) = budget.fast_forward {
            if self.cycle == 0 && self.cores.iter().all(|c| c.stats().committed == 0) {
                self.fast_forward(ff);
            }
        }
        if let Some(fuel) = budget.fuel {
            for core in &mut self.cores {
                core.set_fuel(fuel);
            }
        }
        let cadence = budget.checkpoint_every_cycles.map(|c| c.max(1));
        let mut next_ckpt = cadence.map(|c| self.cycle.saturating_add(c));
        // Invariant auditor: a pure observation sweep at its own
        // cadence; the first non-empty sweep stops the run with full
        // forensics (the sweep never mutates state, so a clean run's
        // timing is unchanged).
        let audit_cadence = budget.audit_every_cycles.map(|c| c.max(1));
        let mut next_audit = audit_cadence.map(|c| self.cycle.saturating_add(c));
        let mut violated: Option<AuditReport> = None;
        // Liveness watchdog: track total committed instructions across
        // cores; a full window without any commit means the pipelines
        // are deadlocked, and the run stops with a forensic report
        // instead of silently burning its fuel/cycle budget.
        let watchdog = budget.effective_watchdog();
        let mut wd_last_total = self.committed_total();
        let mut wd_last_progress = self.cycle;
        let mut stalled = false;
        let mut cancelled = false;
        loop {
            if !self.tick() {
                break;
            }
            if self.cycle >= max_cycles {
                break;
            }
            if self.cycle.is_multiple_of(CANCEL_CHECK_INTERVAL) && budget.cancelled() {
                cancelled = true;
                break;
            }
            if let Some(window) = watchdog {
                let total = self.committed_total();
                if total != wd_last_total {
                    wd_last_total = total;
                    wd_last_progress = self.cycle;
                } else if self.cycle.wrapping_sub(wd_last_progress) >= window
                    && !self.cores.iter().any(Core::out_of_fuel)
                {
                    // A core frozen out-of-fuel is a deadline, not a
                    // stall; let the fuel path report it.
                    stalled = true;
                    break;
                }
            }
            if let (Some(at), Some(c)) = (next_audit, audit_cadence) {
                if self.cycle >= at {
                    let violations = self.audit();
                    if !violations.is_empty() {
                        violated = Some(AuditReport {
                            cycle: self.cycle,
                            cadence: c,
                            violations,
                        });
                        break;
                    }
                    next_audit = Some(self.cycle.saturating_add(c));
                }
            }
            if let (Some(at), Some(c)) = (next_ckpt, cadence) {
                if self.cycle >= at {
                    if self.drain(DRAIN_BOUND_CYCLES) {
                        let bytes = self.snapshot_bytes();
                        sink(self.cycle, &bytes);
                    }
                    // Cadence restarts from the post-drain cycle, so an
                    // uninterrupted run and a resumed run (which starts
                    // at a post-drain cycle) hit the same boundaries.
                    next_ckpt = Some(self.cycle.saturating_add(c));
                    // A drain legitimately pauses commit (and a failed
                    // drain burns its bound without progress): re-arm
                    // the watchdog from the post-drain cycle.
                    wd_last_total = self.committed_total();
                    wd_last_progress = self.cycle;
                }
            }
        }
        let completed = self.cores.iter().all(Core::is_done);
        // A final sweep on completion closes the window between the
        // last cadence boundary and the halt: a fault that survives to
        // the end is still caught before the result is reported.
        if completed && violated.is_none() {
            if let Some(c) = audit_cadence {
                let violations = self.audit();
                if !violations.is_empty() {
                    violated = Some(AuditReport {
                        cycle: self.cycle,
                        cadence: c,
                        violations,
                    });
                }
            }
        }
        let result = SystemResult {
            completed,
            cycles: self.cycle,
            cores: self.cores.iter().map(Core::stats).collect(),
            mem: self.mem.stats(),
        };
        if let Some(report) = violated {
            return Err(SimError::InvariantViolated {
                partial: Box::new(SystemResult {
                    completed: false,
                    ..result
                }),
                report: Box::new(report),
            });
        }
        if cancelled {
            return Err(SimError::Cancelled {
                partial: Box::new(result),
            });
        }
        if stalled {
            let report = self.stall_report(watchdog.unwrap_or(0));
            return Err(SimError::Stalled {
                partial: Box::new(result),
                report: Box::new(report),
            });
        }
        if completed {
            return Ok(result);
        }
        let reason = if self.cores.iter().any(Core::out_of_fuel) {
            DeadlineReason::Fuel
        } else {
            DeadlineReason::MaxCycles
        };
        Err(SimError::DeadlineExceeded {
            partial: Box::new(result),
            reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::reg::names::*;
    use recon_workloads::gen::parallel::{generate, ParKind, ParallelParams};
    use recon_workloads::Scale;

    fn tiny_parallel(kind: ParKind) -> Workload {
        generate(ParallelParams {
            kind,
            slots: 64,
            cond_lines: 4,
            passes: 2,
            seed: 1,
        })
    }

    fn run(workload: &Workload, secure: SecureConfig) -> SystemResult {
        let mut sys = System::new(
            workload,
            CoreConfig::tiny(),
            MemConfig::scaled(),
            secure,
            ReconConfig::default(),
        );
        let r = sys.run(10_000_000);
        assert!(r.completed, "workload must finish");
        r
    }

    #[test]
    fn four_threads_reach_the_barrier_and_finish() {
        for kind in [
            ParKind::SharedChase,
            ParKind::DataParallel { rotate: true },
            ParKind::ProducerConsumer,
        ] {
            let w = tiny_parallel(kind);
            let r = run(&w, SecureConfig::unsafe_baseline());
            assert_eq!(r.cores.len(), 4, "{kind:?}");
            assert!(r.cores.iter().all(|c| c.committed > 0), "{kind:?}");
        }
    }

    #[test]
    fn parallel_results_identical_across_schemes() {
        // Every thread's accumulator must match between baseline and
        // secure schemes (architectural equivalence).
        let w = tiny_parallel(ParKind::SharedChase);
        let base = {
            let mut sys = System::new(
                &w,
                CoreConfig::tiny(),
                MemConfig::scaled(),
                SecureConfig::unsafe_baseline(),
                ReconConfig::default(),
            );
            sys.run(10_000_000);
            sys.cores()
                .iter()
                .map(|c| c.arch_read(R5))
                .collect::<Vec<_>>()
        };
        for secure in [
            SecureConfig::stt(),
            SecureConfig::stt_recon(),
            SecureConfig::nda_recon(),
        ] {
            let mut sys = System::new(
                &w,
                CoreConfig::tiny(),
                MemConfig::scaled(),
                secure,
                ReconConfig::default(),
            );
            let r = sys.run(10_000_000);
            assert!(r.completed, "{secure}");
            let sums: Vec<u64> = sys.cores().iter().map(|c| c.arch_read(R5)).collect();
            assert_eq!(sums, base, "{secure}");
        }
    }

    #[test]
    fn cross_core_reveal_sharing_happens() {
        // SharedChase under STT+ReCon: reveals set by one core are
        // consumed by others (revealed loads on cores that did not
        // necessarily reveal them first).
        let w = tiny_parallel(ParKind::SharedChase);
        let mut sys = System::new(
            &w,
            CoreConfig::tiny(),
            MemConfig::scaled(),
            SecureConfig::stt_recon(),
            ReconConfig::default(),
        );
        let r = sys.run(10_000_000);
        assert!(r.completed);
        assert!(r.mem.reveals_set > 0);
        let revealed_users = r
            .cores
            .iter()
            .filter(|c| c.revealed_loads_committed > 0)
            .count();
        assert!(revealed_users >= 2, "at least two cores consumed reveals");
    }

    #[test]
    fn spec_benchmark_runs_under_system() {
        let b =
            recon_workloads::find(recon_workloads::Suite::Spec2017, "leela", Scale::Quick).unwrap();
        let r = run(&b.workload, SecureConfig::stt());
        assert!(r.ipc() > 0.1);
    }
}

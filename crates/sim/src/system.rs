//! The full-system simulator: N out-of-order cores sharing a coherent
//! memory hierarchy and a functional memory.

use std::sync::Arc;

use recon::ReconConfig;
use recon_cpu::{Core, CoreConfig, CoreStats};
use recon_isa::SparseMem;
use recon_mem::{MemConfig, MemStats, MemorySystem};
use recon_secure::SecureConfig;
use recon_workloads::Workload;

use crate::error::{Budget, DeadlineReason, SimError, CANCEL_CHECK_INTERVAL};

/// Result of a completed (or timed-out) system run.
#[derive(Clone, Debug)]
pub struct SystemResult {
    /// Whether every core committed its `halt` within the budget.
    pub completed: bool,
    /// Cycles elapsed until the last core finished (the PARSEC "ROI
    /// execution time" metric).
    pub cycles: u64,
    /// Per-core statistics.
    pub cores: Vec<CoreStats>,
    /// Memory-system statistics.
    pub mem: MemStats,
}

impl SystemResult {
    /// Total committed instructions across cores.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.cores.iter().map(|c| c.committed).sum()
    }

    /// Aggregate IPC (all cores' instructions over total cycles).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed() as f64 / self.cycles as f64
        }
    }

    /// Total committed guarded ("tainted") loads across cores
    /// (Figure 7).
    #[must_use]
    pub fn guarded_loads(&self) -> u64 {
        self.cores.iter().map(|c| c.guarded_loads_committed).sum()
    }

    /// Total pipeline-trace events dropped by the cores' ring buffers
    /// (zero unless tracing was enabled and overflowed).
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.cores.iter().map(|c| c.trace_dropped).sum()
    }
}

/// A multicore system executing one [`Workload`].
#[derive(Debug)]
pub struct System {
    cores: Vec<Core>,
    mem: MemorySystem,
    data: SparseMem,
    cycle: u64,
}

impl System {
    /// Builds a system sized for the workload's thread count.
    #[must_use]
    pub fn new(
        workload: &Workload,
        core_cfg: CoreConfig,
        mem_cfg: MemConfig,
        secure: SecureConfig,
        recon_cfg: ReconConfig,
    ) -> Self {
        // ReCon's hierarchy metadata is only active when the scheme
        // stacks ReCon on top; the data structures are sized regardless.
        let effective_recon = if secure.recon {
            recon_cfg
        } else {
            ReconConfig {
                enabled: false,
                ..recon_cfg
            }
        };
        let n = workload.num_threads();
        let mem = MemorySystem::new(n, mem_cfg, effective_recon);
        let data = SparseMem::from_image(&workload.program.image);
        let program = Arc::new(workload.program.clone());
        let cores = workload
            .threads
            .iter()
            .enumerate()
            .map(|(id, spec)| {
                let mut thread_program = (*program).clone();
                thread_program.entry = spec.entry;
                let mut core = Core::new(
                    id,
                    Arc::new(thread_program),
                    core_cfg,
                    secure,
                    effective_recon,
                );
                for &(reg, value) in &spec.seeds {
                    core.seed_reg(reg, value);
                }
                core
            })
            .collect();
        System {
            cores,
            mem,
            data,
            cycle: 0,
        }
    }

    /// Immutable access to the cores (for observation-based analyses).
    #[must_use]
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Mutable access to the cores (e.g. to enable observation capture).
    pub fn cores_mut(&mut self) -> &mut [Core] {
        &mut self.cores
    }

    /// The shared functional memory.
    #[must_use]
    pub fn data(&self) -> &SparseMem {
        &self.data
    }

    /// The shared memory system.
    #[must_use]
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to the memory system (e.g. to enable the
    /// transaction log or the reveal-soundness checker).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Advances every core one cycle. Returns `true` while any core is
    /// still running.
    pub fn tick(&mut self) -> bool {
        let now = self.cycle;
        self.cycle += 1;
        self.mem.set_now(now);
        let mut busy = false;
        for core in &mut self.cores {
            busy |= core.tick(&mut self.mem, &mut self.data, now);
        }
        busy
    }

    /// Runs until every core halts or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> SystemResult {
        match self.run_budgeted(max_cycles, &Budget::default()) {
            Ok(r) => r,
            Err(e) => e.into_partial(),
        }
    }

    /// Runs until every core halts, a budget is exhausted, or the run
    /// is cancelled — the deadline-aware entry point behind
    /// `recon serve`'s per-job deadlines.
    ///
    /// `budget.max_cycles` overrides `max_cycles` when set. A run that
    /// stops early returns [`SimError`] carrying the partial
    /// [`SystemResult`] (with `completed == false`); the system itself
    /// stays intact, so stats remain readable afterwards.
    ///
    /// # Errors
    ///
    /// [`SimError::DeadlineExceeded`] when the fuel or cycle budget ran
    /// out, [`SimError::Cancelled`] when the cancellation flag was
    /// raised mid-run.
    pub fn run_budgeted(
        &mut self,
        max_cycles: u64,
        budget: &Budget,
    ) -> Result<SystemResult, SimError> {
        let max_cycles = budget.max_cycles.unwrap_or(max_cycles);
        if let Some(fuel) = budget.fuel {
            for core in &mut self.cores {
                core.set_fuel(fuel);
            }
        }
        let mut cancelled = false;
        loop {
            if !self.tick() {
                break;
            }
            if self.cycle >= max_cycles {
                break;
            }
            if self.cycle.is_multiple_of(CANCEL_CHECK_INTERVAL) && budget.cancelled() {
                cancelled = true;
                break;
            }
        }
        let completed = self.cores.iter().all(Core::is_done);
        let result = SystemResult {
            completed,
            cycles: self.cycle,
            cores: self.cores.iter().map(Core::stats).collect(),
            mem: self.mem.stats(),
        };
        if cancelled {
            return Err(SimError::Cancelled {
                partial: Box::new(result),
            });
        }
        if completed {
            return Ok(result);
        }
        let reason = if self.cores.iter().any(Core::out_of_fuel) {
            DeadlineReason::Fuel
        } else {
            DeadlineReason::MaxCycles
        };
        Err(SimError::DeadlineExceeded {
            partial: Box::new(result),
            reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::reg::names::*;
    use recon_workloads::gen::parallel::{generate, ParKind, ParallelParams};
    use recon_workloads::Scale;

    fn tiny_parallel(kind: ParKind) -> Workload {
        generate(ParallelParams {
            kind,
            slots: 64,
            cond_lines: 4,
            passes: 2,
            seed: 1,
        })
    }

    fn run(workload: &Workload, secure: SecureConfig) -> SystemResult {
        let mut sys = System::new(
            workload,
            CoreConfig::tiny(),
            MemConfig::scaled(),
            secure,
            ReconConfig::default(),
        );
        let r = sys.run(10_000_000);
        assert!(r.completed, "workload must finish");
        r
    }

    #[test]
    fn four_threads_reach_the_barrier_and_finish() {
        for kind in [
            ParKind::SharedChase,
            ParKind::DataParallel { rotate: true },
            ParKind::ProducerConsumer,
        ] {
            let w = tiny_parallel(kind);
            let r = run(&w, SecureConfig::unsafe_baseline());
            assert_eq!(r.cores.len(), 4, "{kind:?}");
            assert!(r.cores.iter().all(|c| c.committed > 0), "{kind:?}");
        }
    }

    #[test]
    fn parallel_results_identical_across_schemes() {
        // Every thread's accumulator must match between baseline and
        // secure schemes (architectural equivalence).
        let w = tiny_parallel(ParKind::SharedChase);
        let base = {
            let mut sys = System::new(
                &w,
                CoreConfig::tiny(),
                MemConfig::scaled(),
                SecureConfig::unsafe_baseline(),
                ReconConfig::default(),
            );
            sys.run(10_000_000);
            sys.cores()
                .iter()
                .map(|c| c.arch_read(R5))
                .collect::<Vec<_>>()
        };
        for secure in [
            SecureConfig::stt(),
            SecureConfig::stt_recon(),
            SecureConfig::nda_recon(),
        ] {
            let mut sys = System::new(
                &w,
                CoreConfig::tiny(),
                MemConfig::scaled(),
                secure,
                ReconConfig::default(),
            );
            let r = sys.run(10_000_000);
            assert!(r.completed, "{secure}");
            let sums: Vec<u64> = sys.cores().iter().map(|c| c.arch_read(R5)).collect();
            assert_eq!(sums, base, "{secure}");
        }
    }

    #[test]
    fn cross_core_reveal_sharing_happens() {
        // SharedChase under STT+ReCon: reveals set by one core are
        // consumed by others (revealed loads on cores that did not
        // necessarily reveal them first).
        let w = tiny_parallel(ParKind::SharedChase);
        let mut sys = System::new(
            &w,
            CoreConfig::tiny(),
            MemConfig::scaled(),
            SecureConfig::stt_recon(),
            ReconConfig::default(),
        );
        let r = sys.run(10_000_000);
        assert!(r.completed);
        assert!(r.mem.reveals_set > 0);
        let revealed_users = r
            .cores
            .iter()
            .filter(|c| c.revealed_loads_committed > 0)
            .count();
        assert!(revealed_users >= 2, "at least two cores consumed reveals");
    }

    #[test]
    fn spec_benchmark_runs_under_system() {
        let b =
            recon_workloads::find(recon_workloads::Suite::Spec2017, "leela", Scale::Quick).unwrap();
        let r = run(&b.workload, SecureConfig::stt());
        assert!(r.ipc() > 0.1);
    }
}

//! The cycle-level invariant auditor and the seeded soft-error
//! injection campaign that proves it works.
//!
//! ## Auditing
//!
//! With [`crate::Budget::audit_every_cycles`] set, a budgeted run
//! sweeps every layer's internal invariants (coherence SWMR, mask
//! subset relations, LPT slot mapping, ROB/LSQ age ordering, guard
//! bookkeeping — see [`recon::audit`]) at the given cadence. A
//! non-empty sweep stops the run with
//! [`crate::SimError::InvariantViolated`] carrying an [`AuditReport`]:
//! a structured forensic record (which invariants, where, at what
//! cycle) with a stable binary encoding so `recon serve` and the
//! checkpoint layer can persist it.
//!
//! ## Injection
//!
//! The auditor's claim — *silent state corruption is detected within a
//! bounded cycle window* — is only worth anything if demonstrated.
//! [`run_campaign`] injects seeded single-bit faults
//! ([`FaultSite`]: reveal masks, directory entries, LPT entries,
//! physical-register values, checkpoint bytes) into mid-flight runs and
//! classifies each outcome: detected by the auditor (with detection
//! latency), detected by checkpoint-load rejection, detected by the
//! liveness watchdog, detected by an end-of-run architectural digest
//! mismatch, or *masked* (the final digest equals the fault-free run's
//! — the flip landed in dead state). A fault that completes with a
//! matching digest after **differing** from the reference would be
//! silent corruption; the campaign counts those separately and the CI
//! gate requires zero.

use core::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use recon::AuditViolation;
use recon_cpu::CoreConfig;
use recon_isa::rng::{Rng as _, SplitMix64};
use recon_isa::snap::{SnapError, SnapReader, SnapWriter};
use recon_mem::MemConfig;
use recon_secure::SecureConfig;
use recon_workloads::gen::parallel::{generate, ParKind, ParallelParams};
use recon_workloads::Workload;

use crate::error::{Budget, SimError};
use crate::system::System;

/// Default audit cadence in cycles: frequent enough to bound detection
/// latency to a small fraction of any run, rare enough that the sweep
/// cost stays within ~2% of total cycles (`recon bench-speed` reports
/// the measured figure).
pub const DEFAULT_AUDIT_EVERY_CYCLES: u64 = 1 << 14;

/// What one audit sweep found when it stopped a run: the violated
/// invariants plus where and when. Plain data with a stable binary
/// encoding (`ARP1`), mirroring [`crate::StallReport`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AuditReport {
    /// Cycle at which the sweep fired.
    pub cycle: u64,
    /// Sweep cadence the run was audited at (bounds detection latency).
    pub cadence: u64,
    /// Every violation the sweep found, in layer order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// One-line summary naming the first violation — the string error
    /// paths (`Display for SimError`) surface.
    #[must_use]
    pub fn summary(&self) -> String {
        match self.violations.first() {
            Some(v) => format!(
                "invariant violated at cycle {}: {v}{}",
                self.cycle,
                if self.violations.len() > 1 {
                    format!(" (+{} more)", self.violations.len() - 1)
                } else {
                    String::new()
                }
            ),
            None => format!("invariant violated at cycle {}", self.cycle),
        }
    }

    /// Serializes the report (an `ARP1`-tagged stream).
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.tag(b"ARP1");
        w.u64(self.cycle);
        w.u64(self.cadence);
        w.u32(self.violations.len() as u32);
        for v in &self.violations {
            w.str(&v.invariant);
            w.str(&v.site);
            w.str(&v.detail);
        }
    }

    /// Serializes the report to a standalone byte vector.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.save_snap(&mut w);
        w.into_bytes()
    }

    /// Reconstructs a report from [`AuditReport::save_snap`] bytes.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a truncated or corrupt stream.
    pub fn load_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.expect_tag(b"ARP1")?;
        let cycle = r.u64()?;
        let cadence = r.u64()?;
        let n = r.u32()? as usize;
        let mut violations = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let invariant = r.str()?;
            let site = r.str()?;
            let detail = r.str()?;
            violations.push(AuditViolation::new(invariant, site, detail));
        }
        Ok(AuditReport {
            cycle,
            cadence,
            violations,
        })
    }

    /// Reconstructs a report from a standalone byte vector.
    ///
    /// # Errors
    ///
    /// As [`AuditReport::load_snap`], plus trailing-bytes detection.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(bytes);
        let report = Self::load_snap(&mut r)?;
        if !r.is_exhausted() {
            return Err(SnapError {
                what: "trailing bytes after audit report".to_string(),
                offset: r.offset(),
            });
        }
        Ok(report)
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "INVARIANT VIOLATION at cycle {} ({} violation(s), audit cadence {}):",
            self.cycle,
            self.violations.len(),
            self.cadence
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Where a soft error is injected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// A reveal-mask bit in a random L1/L2/LLC line.
    RevealMask,
    /// A MESI/directory state (cache-line state or directory entry).
    DirState,
    /// An LPT entry field (address, tag, or active bit).
    Lpt,
    /// A live physical-register value.
    Regfile,
    /// A byte of a serialized checkpoint (exercises the loader's
    /// checksum rejection, not the running system).
    CkptBytes,
}

impl FaultSite {
    /// Every injection site, in campaign rotation order.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::RevealMask,
        FaultSite::DirState,
        FaultSite::Lpt,
        FaultSite::Regfile,
        FaultSite::CkptBytes,
    ];

    /// Stable name used in reports and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::RevealMask => "reveal-mask",
            FaultSite::DirState => "dir-state",
            FaultSite::Lpt => "lpt",
            FaultSite::Regfile => "regfile",
            FaultSite::CkptBytes => "ckpt-bytes",
        }
    }

    /// Parses a site name as produced by [`FaultSite::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one injection campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Seed of the campaign's fault stream (site choice, injection
    /// cycle, bit position). The same seed reproduces the same faults.
    pub seed: u64,
    /// Number of faults to inject (rotated across all sites, schemes,
    /// and workloads).
    pub faults: usize,
    /// Audit cadence of the monitored runs.
    pub audit_every: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 42,
            faults: 200,
            audit_every: 256,
        }
    }
}

/// Per-site outcome counters of a campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Faults actually injected at this site.
    pub injected: u64,
    /// Detected by the invariant auditor ([`SimError::InvariantViolated`]).
    pub detected_audit: u64,
    /// Detected by an end-of-run architectural digest mismatch.
    pub detected_digest: u64,
    /// Detected by the checkpoint loader rejecting corrupt bytes.
    pub detected_ckpt_reject: u64,
    /// Detected by the liveness watchdog or cycle deadline (the fault
    /// wedged the run; it never completed).
    pub detected_stall: u64,
    /// The corrupted state tripped a model assertion (panic) before the
    /// next sweep — caught, but less gracefully than an audit.
    pub detected_crash: u64,
    /// The run completed with an architectural digest equal to the
    /// fault-free reference: the flip landed in dead state.
    pub masked: u64,
    /// Silent corruption: completed with a digest that differs from
    /// the reference yet no detector fired. **Must be zero** — the
    /// digest comparison itself is the last-resort detector, so this
    /// counter is definitionally zero; it exists to make the claim
    /// auditable in the JSON.
    pub silent: u64,
    /// Sum of auditor detection latencies (cycles from injection to
    /// the violating sweep), over `detected_audit` faults.
    pub latency_sum: u64,
    /// Worst auditor detection latency observed.
    pub latency_max: u64,
}

impl SiteStats {
    /// All detections, by any detector.
    #[must_use]
    pub fn detected(&self) -> u64 {
        self.detected_audit
            + self.detected_digest
            + self.detected_ckpt_reject
            + self.detected_stall
            + self.detected_crash
    }

    /// Mean auditor detection latency in cycles (0 when none).
    #[must_use]
    pub fn latency_mean(&self) -> f64 {
        if self.detected_audit == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.detected_audit as f64
        }
    }
}

/// The full result of an injection campaign — the content of
/// `BENCH_audit.json`.
#[derive(Clone, Debug)]
pub struct AuditCampaignReport {
    /// Campaign seed.
    pub seed: u64,
    /// Audit cadence the monitored runs used.
    pub audit_every: u64,
    /// Faults the campaign was asked for.
    pub faults_requested: usize,
    /// Faults that found no target (e.g. an empty LPT at the injection
    /// point) and were skipped.
    pub no_target: u64,
    /// Fault-free monitored runs that tripped the auditor — the
    /// false-positive count. **Must be zero.**
    pub false_positives: u64,
    /// Per-site outcome counters, in [`FaultSite::ALL`] order.
    pub sites: Vec<(FaultSite, SiteStats)>,
}

impl AuditCampaignReport {
    /// Total faults injected across sites.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.sites.iter().map(|(_, s)| s.injected).sum()
    }

    /// Total silent corruptions (must be zero).
    #[must_use]
    pub fn silent(&self) -> u64 {
        self.sites.iter().map(|(_, s)| s.silent).sum()
    }

    /// Total masked faults.
    #[must_use]
    pub fn masked(&self) -> u64 {
        self.sites.iter().map(|(_, s)| s.masked).sum()
    }

    /// Total detections, by any detector.
    #[must_use]
    pub fn detected(&self) -> u64 {
        self.sites.iter().map(|(_, s)| s.detected()).sum()
    }

    /// Renders the report as the `BENCH_audit.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"recon-bench-audit-v1\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"audit_every\": {},\n", self.audit_every));
        s.push_str(&format!(
            "  \"faults_requested\": {},\n",
            self.faults_requested
        ));
        s.push_str(&format!("  \"faults_injected\": {},\n", self.injected()));
        s.push_str(&format!("  \"no_target\": {},\n", self.no_target));
        s.push_str(&format!(
            "  \"false_positives\": {},\n",
            self.false_positives
        ));
        s.push_str(&format!("  \"detected\": {},\n", self.detected()));
        s.push_str(&format!("  \"masked\": {},\n", self.masked()));
        s.push_str(&format!("  \"silent\": {},\n", self.silent()));
        s.push_str("  \"sites\": [\n");
        for (i, (site, st)) in self.sites.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"site\": \"{}\", \"injected\": {}, \"detected_audit\": {}, \
                 \"detected_digest\": {}, \"detected_ckpt_reject\": {}, \
                 \"detected_stall\": {}, \"detected_crash\": {}, \"masked\": {}, \
                 \"silent\": {}, \"latency_mean_cycles\": {:.1}, \
                 \"latency_max_cycles\": {}}}{}\n",
                site.name(),
                st.injected,
                st.detected_audit,
                st.detected_digest,
                st.detected_ckpt_reject,
                st.detected_stall,
                st.detected_crash,
                st.masked,
                st.silent,
                st.latency_mean(),
                st.latency_max,
                if i + 1 < self.sites.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// The tiny multicore workloads the campaign injects into: small enough
/// that hundreds of monitored runs stay cheap, parallel enough that the
/// directory, reveal masks, and cross-core sharing all carry live
/// state.
fn campaign_workloads() -> Vec<Workload> {
    [
        ParKind::SharedChase,
        ParKind::DataParallel { rotate: true },
        ParKind::ProducerConsumer,
    ]
    .into_iter()
    .map(|kind| {
        generate(ParallelParams {
            kind,
            slots: 64,
            cond_lines: 4,
            passes: 2,
            seed: 1,
        })
    })
    .collect()
}

fn fresh(workload: &Workload, secure: SecureConfig) -> System {
    System::new(
        workload,
        CoreConfig::tiny(),
        MemConfig::scaled(),
        secure,
        recon::ReconConfig::default(),
    )
}

/// Outcome classification of one monitored (post-injection) run.
enum RunOutcome {
    Completed(u64),
    Audit(u64),
    Stall,
    Crash,
    FalsePositiveCheckFailed,
}

/// Runs `sys` to completion under the audit cadence, classifying how it
/// ends. `Completed` carries the final architectural digest.
fn monitored_finish(sys: &mut System, max_cycles: u64, audit_every: u64) -> RunOutcome {
    let budget = Budget {
        audit_every_cycles: Some(audit_every),
        ..Budget::default()
    };
    let r = catch_unwind(AssertUnwindSafe(|| sys.run_budgeted(max_cycles, &budget)));
    match r {
        Err(_) => RunOutcome::Crash,
        Ok(Ok(_)) => RunOutcome::Completed(sys.arch_digest()),
        Ok(Err(SimError::InvariantViolated { report, .. })) => RunOutcome::Audit(report.cycle),
        Ok(Err(SimError::Stalled { .. } | SimError::DeadlineExceeded { .. })) => RunOutcome::Stall,
        Ok(Err(SimError::Cancelled { .. })) => RunOutcome::FalsePositiveCheckFailed,
    }
}

/// Runs the seeded soft-error injection campaign.
///
/// For each fault the campaign rotates through sites, schemes, and
/// workloads; runs a fault-free *reference* with identical staging (run
/// to the injection cycle, then continue under audit) to obtain the
/// reference digest; then repeats the run with the fault injected and
/// classifies the outcome. Identical staging makes the digest
/// comparison exact: any timing perturbation from the split applies to
/// both runs.
///
/// # Panics
///
/// Panics if a campaign workload cannot complete fault-free (that would
/// be a simulator bug, not a campaign result).
#[must_use]
pub fn run_campaign(cfg: &CampaignConfig) -> AuditCampaignReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let workloads = campaign_workloads();
    let schemes = [
        SecureConfig::unsafe_baseline(),
        SecureConfig::nda(),
        SecureConfig::nda_recon(),
        SecureConfig::stt(),
        SecureConfig::stt_recon(),
    ];
    // Fault-free total cycles per (workload, scheme), measured once.
    let mut total_cycles: Vec<Vec<Option<u64>>> = vec![vec![None; schemes.len()]; workloads.len()];

    let mut sites: Vec<(FaultSite, SiteStats)> = FaultSite::ALL
        .into_iter()
        .map(|s| (s, SiteStats::default()))
        .collect();
    let mut no_target = 0u64;
    let mut false_positives = 0u64;

    const MAX_CYCLES: u64 = 10_000_000;
    for i in 0..cfg.faults {
        let site = FaultSite::ALL[i % FaultSite::ALL.len()];
        let scheme_idx = (i / FaultSite::ALL.len()) % schemes.len();
        let wl_idx = (i / (FaultSite::ALL.len() * schemes.len())) % workloads.len();
        let scheme = schemes[scheme_idx];
        let workload = &workloads[wl_idx];

        let total = *total_cycles[wl_idx][scheme_idx].get_or_insert_with(|| {
            let mut sys = fresh(workload, scheme);
            let r = sys.run(MAX_CYCLES);
            assert!(r.completed, "campaign workload must complete fault-free");
            r.cycles
        });
        // Inject somewhere in the 10%..90% band of the run.
        let inject_cycle = (total * (10 + rng.next_u64() % 80) / 100).max(1);
        let stage = Budget {
            max_cycles: Some(inject_cycle),
            ..Budget::default()
        };

        // Fault-free reference with identical staging.
        let mut reference = fresh(workload, scheme);
        let _ = reference.run_budgeted(MAX_CYCLES, &stage);
        let digest_ref = match monitored_finish(&mut reference, MAX_CYCLES, cfg.audit_every) {
            RunOutcome::Completed(d) => d,
            _ => {
                // A fault-free run must be clean: anything else is a
                // false positive (or a campaign bug) and disqualifies
                // this fault's comparison.
                false_positives += 1;
                continue;
            }
        };

        // The faulted run, staged identically.
        let mut sys = fresh(workload, scheme);
        let _ = sys.run_budgeted(MAX_CYCLES, &stage);
        let stats = &mut sites[i % FaultSite::ALL.len()].1;

        if site == FaultSite::CkptBytes {
            // Corrupt serialized state instead of live state: drain,
            // snapshot, flip one byte, and demand the loader reject it.
            if !sys.drain(crate::system::DRAIN_BOUND_CYCLES) {
                no_target += 1;
                continue;
            }
            let mut bytes = sys.snapshot_bytes();
            let at = (rng.next_u64() as usize) % bytes.len();
            bytes[at] ^= 1 << (rng.next_u64() % 8);
            stats.injected += 1;
            let mut restored = fresh(workload, scheme);
            if restored.restore_bytes(&bytes).is_err() {
                stats.detected_ckpt_reject += 1;
            } else {
                // The flip slipped past the section checksums (should
                // be impossible); fall through to runtime detection.
                match monitored_finish(&mut restored, MAX_CYCLES, cfg.audit_every) {
                    RunOutcome::Completed(d) if d == digest_ref => stats.masked += 1,
                    RunOutcome::Completed(_) => stats.detected_digest += 1,
                    RunOutcome::Audit(cycle) => {
                        let lat = cycle.saturating_sub(inject_cycle);
                        stats.detected_audit += 1;
                        stats.latency_sum += lat;
                        stats.latency_max = stats.latency_max.max(lat);
                    }
                    RunOutcome::Stall => stats.detected_stall += 1,
                    RunOutcome::Crash => stats.detected_crash += 1,
                    RunOutcome::FalsePositiveCheckFailed => {}
                }
            }
            continue;
        }

        match sys.inject_fault(site, &mut rng) {
            None => {
                no_target += 1;
                continue;
            }
            Some(_desc) => stats.injected += 1,
        }
        match monitored_finish(&mut sys, MAX_CYCLES, cfg.audit_every) {
            RunOutcome::Completed(d) if d == digest_ref => stats.masked += 1,
            RunOutcome::Completed(_) => stats.detected_digest += 1,
            RunOutcome::Audit(cycle) => {
                let lat = cycle.saturating_sub(inject_cycle);
                stats.detected_audit += 1;
                stats.latency_sum += lat;
                stats.latency_max = stats.latency_max.max(lat);
            }
            RunOutcome::Stall => stats.detected_stall += 1,
            RunOutcome::Crash => stats.detected_crash += 1,
            RunOutcome::FalsePositiveCheckFailed => {}
        }
    }

    AuditCampaignReport {
        seed: cfg.seed,
        audit_every: cfg.audit_every,
        faults_requested: cfg.faults,
        no_target,
        false_positives,
        sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditReport {
        AuditReport {
            cycle: 4_096,
            cadence: 256,
            violations: vec![
                AuditViolation::new("swmr", "mem.dir", "line 0x40: 2 writable copies"),
                AuditViolation::new("lpt-slot-map", "core1.lpt", "slot 3 holds tag 9"),
            ],
        }
    }

    #[test]
    fn report_bytes_round_trip() {
        let r = sample();
        let back = AuditReport::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn corrupt_report_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(AuditReport::from_bytes(&bytes).is_err());
    }

    #[test]
    fn summary_names_first_violation_and_count() {
        let s = sample().summary();
        assert!(s.contains("swmr"), "{s}");
        assert!(s.contains("+1 more"), "{s}");
        assert!(s.contains("4096"), "{s}");
    }

    #[test]
    fn display_lists_every_violation() {
        let text = sample().to_string();
        assert!(text.contains("INVARIANT VIOLATION"), "{text}");
        assert!(text.contains("mem.dir"), "{text}");
        assert!(text.contains("core1.lpt"), "{text}");
    }

    #[test]
    fn site_names_round_trip() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::parse(site.name()), Some(site));
        }
        assert_eq!(FaultSite::parse("bogus"), None);
    }

    #[test]
    fn clean_runs_audit_clean_across_schemes() {
        // Zero-false-positive gate in miniature: every scheme runs a
        // parallel workload under a tight audit cadence and completes.
        let w = &campaign_workloads()[0];
        for scheme in [
            SecureConfig::unsafe_baseline(),
            SecureConfig::nda(),
            SecureConfig::nda_recon(),
            SecureConfig::stt(),
            SecureConfig::stt_recon(),
        ] {
            let mut sys = fresh(w, scheme);
            let budget = Budget {
                audit_every_cycles: Some(64),
                ..Budget::default()
            };
            let r = sys.run_budgeted(10_000_000, &budget);
            assert!(r.is_ok(), "{scheme}: {:?}", r.err().map(|e| e.to_string()));
        }
    }

    #[test]
    fn mini_campaign_finds_no_silent_corruption() {
        let report = run_campaign(&CampaignConfig {
            seed: 7,
            faults: 10,
            audit_every: 128,
        });
        assert_eq!(report.false_positives, 0, "{}", report.to_json());
        assert_eq!(report.silent(), 0, "{}", report.to_json());
        assert!(report.injected() >= 5, "{}", report.to_json());
        assert_eq!(
            report.detected() + report.masked(),
            report.injected(),
            "{}",
            report.to_json()
        );
    }

    #[test]
    fn campaign_json_has_schema_and_sites() {
        let report = AuditCampaignReport {
            seed: 42,
            audit_every: 256,
            faults_requested: 10,
            no_target: 1,
            false_positives: 0,
            sites: FaultSite::ALL
                .into_iter()
                .map(|s| {
                    (
                        s,
                        SiteStats {
                            injected: 2,
                            detected_audit: 1,
                            masked: 1,
                            latency_sum: 100,
                            latency_max: 100,
                            ..SiteStats::default()
                        },
                    )
                })
                .collect(),
        };
        let json = report.to_json();
        assert!(
            json.contains("\"schema\": \"recon-bench-audit-v1\""),
            "{json}"
        );
        assert!(json.contains("\"reveal-mask\""), "{json}");
        assert!(json.contains("\"ckpt-bytes\""), "{json}");
        assert!(json.contains("\"silent\": 0"), "{json}");
        assert!(json.contains("\"latency_mean_cycles\": 100.0"), "{json}");
        assert_eq!(report.injected(), 10);
        assert_eq!(report.detected(), 5);
        assert_eq!(report.silent(), 0);
    }
}

//! Directed microprogram scenarios from the paper's discussion sections,
//! shared by the bench harnesses and the integration tests.

use recon_isa::{reg::names::*, Asm, Program};

/// The Table 1 / Figure 2 store-to-load-forwarding scenario.
///
/// Layout (§4.5):
///
/// ```text
/// warm-up (non-speculative):
///     ld  r2, [0x100]      ; ld r3, [r2]    — reveals 0x100
///     warm the store-address line
/// main (speculative under a slow branch):
///     r1  = load conds      (cold line: ~memory latency)
///     if (r1 != 0) {                        — predicted taken, stays
///         st  r3v, [r13]                    —   unresolved for ~100 cy
///         PC3: ld r5, [0x100]
///         PC4: ld r6, [r5]
///     }
/// ```
///
/// `store_target` selects the Table 1 row:
///
/// * `0x300` — no alias: PC3 reads memory (observable); PC4 is
///   observable only when `[0x100]` is revealed (row 1);
/// * `0x200` — aliases PC4's target: PC4 forwards from the store
///   (concealed, not observable) in every scheme (row 2);
/// * `0x100` — aliases PC3: PC3 itself forwards (concealed), so neither
///   load is observable (rows 3/4).
#[derive(Clone, Debug)]
pub struct Table1Scenario {
    /// The program to run.
    pub program: Program,
    /// Instruction index of PC3 (`ld r5, [r4]`).
    pub pc3: usize,
    /// Instruction index of PC4 (`ld r6, [r5]`).
    pub pc4: usize,
}

/// Builds the Table 1 scenario with the given store target.
///
/// # Panics
///
/// Panics if `store_target` is not one of `0x100`, `0x200`, `0x300`.
#[must_use]
pub fn table1_scenario(store_target: u64) -> Table1Scenario {
    assert!(
        [0x100, 0x200, 0x300].contains(&store_target),
        "store target selects the Table 1 row"
    );
    let mut a = Asm::new();
    // Data: the pointer at 0x100 -> 0x200; the secret-ish value there;
    // a spare word at 0x300; the branch condition on a cold line; the
    // store-address word on a warm line.
    a.data(0x100, 0x200);
    a.data(0x200, 0x300); // a valid pointer so PC4 never faults
    a.data(0x300, 7);
    a.data(0x20_0000, 1); // branch condition (cold at main time)
    a.data(0x9100, store_target);

    // ---- warm-up (non-speculative) ----
    a.li(R1, 0x100);
    a.load(R2, R1, 0);
    a.load(R3, R2, 0); // load pair: reveals 0x100
    a.li(R13, 0x9100);
    a.load(R13, R13, 0); // warm the store-address line; r13 = target
    a.li(R4, 0x200); // store data: a valid pointer
                     // Serialize: everything below depends on the warm-up's final load
                     // (R3), so the reveal lands before the gadget executes. The chain
                     // also pads a few cycles past LD2's commit (where the reveal fires).
    a.and(R9, R3, R0); // R9 = 0, data-dependent on the reveal pair
    for _ in 0..8 {
        a.addi(R9, R9, 0);
    }

    // ---- main ----
    a.li(R10, 0x20_0000);
    a.add(R10, R10, R9); // cond address depends on the warm-up
    a.load(R11, R10, 0); // slow branch condition
    let body = a.new_label();
    let end = a.new_label();
    a.bne(R11, R0, body); // predicted taken; resolves ~memory latency
    a.jump(end);
    a.bind(body);
    a.addi(R15, R9, 0x100); // r4 = 0x100, dependent on the warm-up
    a.store(R4, R13, 0); // PC2: store to the selected target
    let pc3 = a.here();
    a.load(R5, R15, 0); // PC3: ld r5, [r4]
    let pc4 = a.here();
    a.load(R6, R5, 0); // PC4: ld r6, [r5]
    a.bind(end);
    a.halt();

    Table1Scenario {
        program: a.assemble().expect("scenario assembles"),
        pc3,
        pc4,
    }
}

/// Observability outcome of one Table 1 run: whether PC3 / PC4 accessed
/// the memory hierarchy while speculative.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Observability {
    /// PC3 (`ld [r4]`) was speculatively observable.
    pub pc3: bool,
    /// PC4 (`ld [r5]`) was speculatively observable.
    pub pc4: bool,
}

/// Runs a Table 1 scenario under `secure` and reports the observability
/// of PC3/PC4.
#[must_use]
pub fn run_table1(scenario: &Table1Scenario, secure: recon_secure::SecureConfig) -> Observability {
    use recon_workloads::Workload;
    let mut sys = crate::System::new(
        &Workload::single(scenario.program.clone()),
        recon_cpu::CoreConfig::paper(),
        recon_mem::MemConfig::scaled(),
        secure,
        recon::ReconConfig::default(),
    );
    sys.cores_mut()[0].record_observations(true);
    let r = sys.run(1_000_000);
    assert!(r.completed, "table 1 scenario must finish");
    let obs = sys.cores_mut()[0].take_observations();
    let seen = |pc: usize| obs.iter().any(|o| o.pc == pc && o.speculative);
    Observability {
        pc3: seen(scenario.pc3),
        pc4: seen(scenario.pc4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_secure::SecureConfig;

    #[test]
    fn scenario_assembles_and_runs() {
        for target in [0x100u64, 0x200, 0x300] {
            let s = table1_scenario(target);
            let (_, state) = recon_isa::run_collect(&s.program, 100_000).unwrap();
            assert!(state.halted, "target {target:#x}");
        }
    }

    #[test]
    fn row1_stt_observes_pc3_only_recon_observes_both() {
        let s = table1_scenario(0x300);
        let stt = run_table1(&s, SecureConfig::stt());
        assert_eq!(
            stt,
            Observability {
                pc3: true,
                pc4: false
            },
            "STT row 1"
        );
        let recon = run_table1(&s, SecureConfig::stt_recon());
        assert_eq!(
            recon,
            Observability {
                pc3: true,
                pc4: true
            },
            "ReCon row 1"
        );
    }

    #[test]
    fn row2_forwarded_pc4_is_never_observable() {
        let s = table1_scenario(0x200);
        for secure in [SecureConfig::stt(), SecureConfig::stt_recon()] {
            let o = run_table1(&s, secure);
            assert_eq!(
                o,
                Observability {
                    pc3: true,
                    pc4: false
                },
                "{secure}"
            );
        }
    }

    #[test]
    fn rows34_forwarded_pc3_conceals_everything() {
        let s = table1_scenario(0x100);
        for secure in [SecureConfig::stt(), SecureConfig::stt_recon()] {
            let o = run_table1(&s, secure);
            assert_eq!(
                o,
                Observability {
                    pc3: false,
                    pc4: false
                },
                "{secure}"
            );
        }
    }
}

//! Paper-style text reports: fixed-width tables with per-benchmark rows
//! and summary means, as printed by the figure harnesses.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// ```
/// use recon_sim::report::Table;
///
/// let mut t = Table::new(&["bench", "IPC"]);
/// t.row(&["mcf".into(), "0.91".into()]);
/// let text = t.render();
/// assert!(text.contains("bench"));
/// assert!(text.contains("mcf"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{cell:<width$}", width = widths[i]);
                } else {
                    let _ = write!(out, "  {cell:>width$}", width = widths[i]);
                }
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal (`12.3%`).
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a normalized value with three decimals.
#[must_use]
pub fn norm(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "2.345".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(norm(0.9), "0.900");
    }
}

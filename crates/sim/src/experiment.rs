//! Experiment runner: one benchmark under the paper's scheme matrix.

use recon::ReconConfig;
use recon_cpu::CoreConfig;
use recon_mem::MemConfig;
use recon_secure::SecureConfig;
use recon_workloads::{Benchmark, Workload};

use crate::error::{Budget, SimError};
use crate::system::{System, SystemResult};

/// Shared experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// Core configuration (Table 2 defaults).
    pub core: CoreConfig,
    /// Memory configuration (capacity-scaled by default; see DESIGN.md).
    pub mem: MemConfig,
    /// ReCon configuration used when a scheme stacks ReCon.
    pub recon: ReconConfig,
    /// Cycle budget per run.
    pub max_cycles: u64,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            core: CoreConfig::paper(),
            mem: MemConfig::scaled(),
            recon: ReconConfig::default(),
            max_cycles: 200_000_000,
        }
    }
}

impl Experiment {
    /// Runs `workload` under `secure`, returning the system result.
    ///
    /// # Panics
    ///
    /// Panics if the run does not complete within the cycle budget —
    /// experiments are sized to terminate, so a timeout is a bug.
    #[must_use]
    pub fn run(&self, workload: &Workload, secure: SecureConfig) -> SystemResult {
        let mut sys = System::new(workload, self.core, self.mem, secure, self.recon);
        let r = sys.run(self.max_cycles);
        assert!(
            r.completed,
            "run exceeded {} cycles under {}",
            self.max_cycles, secure
        );
        r
    }

    /// Runs `workload` under `secure` within `budget`, returning the
    /// partial result as an error if a deadline fires or the job is
    /// cancelled — the fallible entry point `recon serve` jobs use.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the budgeted run; the partial
    /// statistics accumulated up to the stop point ride along.
    pub fn try_run(
        &self,
        workload: &Workload,
        secure: SecureConfig,
        budget: &Budget,
    ) -> Result<SystemResult, SimError> {
        let mut sys = System::new(workload, self.core, self.mem, secure, self.recon);
        sys.run_budgeted(self.max_cycles, budget)
    }

    /// Runs the full five-way scheme matrix on one benchmark.
    #[must_use]
    pub fn run_matrix(&self, bench: &Benchmark) -> SchemeMatrix {
        let w = &bench.workload;
        SchemeMatrix {
            name: bench.name,
            baseline: self.run(w, SecureConfig::unsafe_baseline()),
            nda: self.run(w, SecureConfig::nda()),
            nda_recon: self.run(w, SecureConfig::nda_recon()),
            stt: self.run(w, SecureConfig::stt()),
            stt_recon: self.run(w, SecureConfig::stt_recon()),
        }
    }
}

/// Results of the five evaluated configurations on one benchmark.
#[derive(Clone, Debug)]
pub struct SchemeMatrix {
    /// Benchmark name.
    pub name: &'static str,
    /// Unsafe baseline.
    pub baseline: SystemResult,
    /// NDA.
    pub nda: SystemResult,
    /// NDA + ReCon.
    pub nda_recon: SystemResult,
    /// STT.
    pub stt: SystemResult,
    /// STT + ReCon.
    pub stt_recon: SystemResult,
}

impl SchemeMatrix {
    /// IPC of `result` normalized to the unsafe baseline (Figures 5/6).
    #[must_use]
    pub fn normalized_ipc(&self, result: &SystemResult) -> f64 {
        let base = self.baseline.ipc();
        if base == 0.0 {
            0.0
        } else {
            result.ipc() / base
        }
    }

    /// Execution time of `result` normalized to the baseline (Figure 8).
    #[must_use]
    pub fn normalized_time(&self, result: &SystemResult) -> f64 {
        if self.baseline.cycles == 0 {
            0.0
        } else {
            result.cycles as f64 / self.baseline.cycles as f64
        }
    }

    /// Guarded ("tainted") loads of STT+ReCon normalized to STT
    /// (Figure 7).
    #[must_use]
    pub fn tainted_load_ratio(&self) -> f64 {
        let stt = self.stt.guarded_loads();
        if stt == 0 {
            0.0
        } else {
            self.stt_recon.guarded_loads() as f64 / stt as f64
        }
    }
}

/// Overhead of a scheme versus baseline, from normalized IPC
/// (`1 - ipc_norm`, clamped at 0).
#[must_use]
pub fn overhead_from_norm_ipc(norm: f64) -> f64 {
    (1.0 - norm).max(0.0)
}

/// Relative overhead reduction achieved by ReCon:
/// `(base_overhead - recon_overhead) / base_overhead` (the paper's
/// "reduces the overhead by X%" metric). Zero when there was no
/// overhead to recover.
#[must_use]
pub fn overhead_reduction(scheme_overhead: f64, recon_overhead: f64) -> f64 {
    if scheme_overhead <= 0.0 {
        0.0
    } else {
        ((scheme_overhead - recon_overhead) / scheme_overhead).max(0.0)
    }
}

/// Geometric mean of a non-empty slice (0.0 for empty).
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean (0.0 for empty).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_workloads::{find, Scale, Suite};

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_math() {
        assert!((overhead_from_norm_ipc(0.9) - 0.1).abs() < 1e-12);
        assert_eq!(overhead_from_norm_ipc(1.1), 0.0);
        assert!((overhead_reduction(0.10, 0.05) - 0.5).abs() < 1e-12);
        assert_eq!(overhead_reduction(0.0, 0.0), 0.0);
    }

    #[test]
    fn matrix_on_a_small_benchmark_orders_schemes() {
        let b = find(Suite::Spec2017, "xalancbmk", Scale::Quick).unwrap();
        let exp = Experiment {
            max_cycles: 500_000_000,
            ..Experiment::default()
        };
        let m = exp.run_matrix(&b);
        // The baseline is the fastest configuration.
        assert!(
            m.normalized_ipc(&m.stt) <= 1.001,
            "STT cannot beat baseline"
        );
        assert!(
            m.normalized_ipc(&m.nda) <= m.normalized_ipc(&m.stt) + 0.02,
            "NDA <= STT"
        );
        // ReCon recovers (or at least never hurts).
        assert!(
            m.normalized_ipc(&m.stt_recon) >= m.normalized_ipc(&m.stt) - 0.001,
            "STT+ReCon >= STT"
        );
        assert!(
            m.normalized_ipc(&m.nda_recon) >= m.normalized_ipc(&m.nda) - 0.001,
            "NDA+ReCon >= NDA"
        );
        // And reduces tainted loads.
        assert!(m.tainted_load_ratio() <= 1.0);
    }
}

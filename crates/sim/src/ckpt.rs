//! Checkpoint files: versioned, checksummed snapshots of a running
//! simulation (`RCK1` format).
//!
//! A checkpoint is one file holding one drained-boundary snapshot
//! ([`crate::System::snapshot_bytes`]) plus enough metadata to rebuild
//! the system it came from (suite/bench/scheme/scale, cadence, budget).
//! The on-disk record follows the same discipline as `recon-serve`'s
//! cache log: magic, length, payload, and a trailing checksum over the
//! whole record, so a torn write (SIGKILL mid-checkpoint), a corrupted
//! byte, or a zero-length file is *detected* — recovery skips and
//! counts the bad file and falls back to an older checkpoint or a
//! from-scratch run, never to wrong bytes.
//!
//! Layout:
//!
//! ```text
//! "RCK1"            magic (4 bytes)
//! config_digest     u64 LE — identifies the (config, workload, cadence)
//! payload_len       u32 LE
//! payload           SnapWriter stream: tag "CKPT", cycle, meta, state
//! checksum          u64 LE — FxHash over digest || payload
//! ```
//!
//! Files are named `<digest:016x>-<cycle:020>.rck`, so a lexicographic
//! sort within one digest is a cycle sort and the newest checkpoint of
//! a job is `max()` over its files.

use std::fs;
use std::hash::Hasher;
use std::io;
use std::path::{Path, PathBuf};

use recon_isa::hash::FxHasher;
use recon_isa::snap::{SnapError, SnapReader, SnapWriter};
use recon_secure::SecureConfig;
use recon_workloads::Workload;

use crate::audit::AuditReport;
use crate::error::{Budget, SimError};
use crate::experiment::Experiment;
use crate::stall::StallReport;
use crate::system::{System, SystemResult};

/// File magic of the checkpoint format, version 1.
pub const MAGIC: [u8; 4] = *b"RCK1";

/// Extension used by checkpoint files.
pub const EXTENSION: &str = "rck";

/// A decoded checkpoint: the snapshot bytes plus identifying metadata.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Checkpoint {
    /// Digest of the run configuration (see [`config_digest`]); a
    /// checkpoint may only be restored into a system built from the
    /// same configuration.
    pub config_digest: u64,
    /// Simulated cycle the snapshot was taken at.
    pub cycle: u64,
    /// Ordered key/value metadata (suite, bench, scheme, scale,
    /// cadence, budget fields, optionally an embedded job spec).
    pub meta: Vec<(String, String)>,
    /// The [`crate::System::snapshot_bytes`] stream.
    pub state: Vec<u8>,
}

impl Checkpoint {
    /// Looks up a metadata value by key (first match).
    #[must_use]
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Encodes the checkpoint into the `RCK1` record bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.tag(b"CKPT");
        w.u64(self.cycle);
        w.u32(self.meta.len() as u32);
        for (k, v) in &self.meta {
            w.str(k);
            w.str(v);
        }
        w.bytes(&self.state);
        let payload = w.into_bytes();

        let mut out = Vec::with_capacity(4 + 8 + 4 + payload.len() + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.config_digest.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&checksum(self.config_digest, &payload).to_le_bytes());
        out
    }

    /// Decodes and verifies an `RCK1` record.
    ///
    /// # Errors
    ///
    /// Fails on bad magic, a length pointing past the end (torn write),
    /// a checksum mismatch (corruption), or a malformed payload. Every
    /// failure names what went wrong; none ever yields wrong state.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, SnapError> {
        let fail = |what: &str, offset: usize| SnapError {
            what: what.to_string(),
            offset,
        };
        if bytes.len() < 4 + 8 + 4 + 8 {
            return Err(fail(
                "checkpoint shorter than its fixed header",
                bytes.len(),
            ));
        }
        if bytes[..4] != MAGIC {
            return Err(fail("bad checkpoint magic (want RCK1)", 0));
        }
        let config_digest = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        let body_end = 16usize
            .checked_add(len)
            .ok_or_else(|| fail("checkpoint length overflows", 12))?;
        if body_end + 8 != bytes.len() {
            return Err(fail(
                "checkpoint length does not match the file (torn or truncated write)",
                12,
            ));
        }
        let payload = &bytes[16..body_end];
        let stored = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().expect("8"));
        if stored != checksum(config_digest, payload) {
            return Err(fail(
                "checkpoint checksum mismatch (corrupt record)",
                body_end,
            ));
        }

        let mut r = SnapReader::new(payload);
        r.expect_tag(b"CKPT")?;
        let cycle = r.u64()?;
        let meta_count = r.u32()? as usize;
        let mut meta = Vec::with_capacity(meta_count);
        for _ in 0..meta_count {
            let k = r.str()?;
            let v = r.str()?;
            meta.push((k, v));
        }
        let state = r.bytes()?.to_vec();
        Ok(Checkpoint {
            config_digest,
            cycle,
            meta,
            state,
        })
    }
}

/// The record checksum: FxHash over the config digest and the payload.
#[must_use]
pub fn checksum(config_digest: u64, payload: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(config_digest);
    h.write(payload);
    h.finish()
}

/// Digests a run configuration from its textual parts (Debug-formatted
/// configs, workload identity, checkpoint cadence). Checkpoints only
/// resume into a system whose parts digest identically.
#[must_use]
pub fn config_digest(parts: &[&str]) -> u64 {
    let mut h = FxHasher::default();
    for p in parts {
        h.write(p.as_bytes());
        h.write_u8(0x1f); // separator: ("ab","c") != ("a","bc")
    }
    h.finish()
}

/// Canonical file name of a checkpoint: digest then zero-padded cycle,
/// so a lexicographic sort within one digest is a cycle sort.
#[must_use]
pub fn file_name(config_digest: u64, cycle: u64) -> String {
    format!("{config_digest:016x}-{cycle:020}.{EXTENSION}")
}

/// Writes a checkpoint into `dir` under its canonical name, creating
/// the directory if needed. The bytes land in a `.tmp` sibling first
/// and are renamed into place, so a process killed mid-write never
/// leaves a partial file under the canonical name — a torn `.rck` can
/// only come from an OS-level crash (and [`Checkpoint::decode`]'s
/// checksum rejects it then).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write(dir: &Path, ck: &Checkpoint) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(file_name(ck.config_digest, ck.cycle));
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, ck.encode())?;
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Result of scanning a checkpoint directory.
#[derive(Debug, Default)]
pub struct Scan {
    /// Valid checkpoints, newest cycle first, grouped arbitrarily
    /// across digests.
    pub valid: Vec<(PathBuf, Checkpoint)>,
    /// Files that failed to decode (torn, corrupt, zero-length). The
    /// caller decides whether to delete them; scanning never does.
    pub corrupt: Vec<PathBuf>,
}

impl Scan {
    /// The newest valid checkpoint for `config_digest`, if any.
    #[must_use]
    pub fn latest_for(&self, config_digest: u64) -> Option<&(PathBuf, Checkpoint)> {
        self.valid
            .iter()
            .filter(|(_, c)| c.config_digest == config_digest)
            .max_by_key(|(_, c)| c.cycle)
    }
}

/// Scans `dir` for `*.rck` files, decoding each. A missing directory
/// scans as empty (a fresh run). Files are visited in sorted name
/// order, so the result is deterministic.
///
/// # Errors
///
/// Propagates filesystem errors other than the directory not existing.
pub fn scan(dir: &Path) -> io::Result<Scan> {
    let mut out = Scan::default();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == EXTENSION))
        .collect();
    paths.sort();
    for path in paths {
        match fs::read(&path).ok().as_deref().map(Checkpoint::decode) {
            Some(Ok(ck)) => out.valid.push((path, ck)),
            _ => out.corrupt.push(path),
        }
    }
    out.valid.sort_by_key(|e| std::cmp::Reverse(e.1.cycle));
    Ok(out)
}

/// Deletes all but the newest `keep` valid checkpoints of
/// `config_digest` in `dir`. Returns how many files were removed.
///
/// # Errors
///
/// Propagates filesystem errors (a file vanishing mid-GC is not one).
pub fn gc(dir: &Path, config_digest: u64, keep: usize) -> io::Result<usize> {
    let scan = scan(dir)?;
    let mut mine: Vec<&(PathBuf, Checkpoint)> = scan
        .valid
        .iter()
        .filter(|(_, c)| c.config_digest == config_digest)
        .collect();
    mine.sort_by_key(|e| std::cmp::Reverse(e.1.cycle));
    let mut deleted = 0;
    for (path, _) in mine.into_iter().skip(keep) {
        if fs::remove_file(path).is_ok() {
            deleted += 1;
        }
    }
    Ok(deleted)
}

/// Deletes every checkpoint file (valid or corrupt) of `config_digest`
/// in `dir` — called when the job they belong to completes. Returns
/// how many files were removed.
///
/// # Errors
///
/// Propagates filesystem errors from the scan.
pub fn delete_for_digest(dir: &Path, config_digest: u64) -> io::Result<usize> {
    let prefix = format!("{config_digest:016x}-");
    let scan = scan(dir)?;
    let mut deleted = 0;
    for path in scan.valid.iter().map(|(p, _)| p).chain(scan.corrupt.iter()) {
        let matches = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with(&prefix));
        if matches && fs::remove_file(path).is_ok() {
            deleted += 1;
        }
    }
    Ok(deleted)
}

/// Extension used by completed-result records (suite resume).
pub const RESULT_EXTENSION: &str = "res";

/// Writes the completion record of a finished job: the same `RCK1`
/// envelope, but carrying a serialized [`SystemResult`] instead of
/// machine state, under `<digest:016x>.res`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_result(
    dir: &Path,
    config_digest: u64,
    result: &SystemResult,
    meta: &[(String, String)],
) -> io::Result<PathBuf> {
    let mut w = SnapWriter::new();
    result.save_snap(&mut w);
    let ck = Checkpoint {
        config_digest,
        cycle: result.cycles,
        meta: meta.to_vec(),
        state: w.into_bytes(),
    };
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{config_digest:016x}.{RESULT_EXTENSION}"));
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, ck.encode())?;
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Meta key distinguishing record kinds in a `.res` file: absent or
/// `"completed"` for a finished job, `"stalled"` for a watchdog trip.
pub const OUTCOME_KEY: &str = "outcome";

/// [`OUTCOME_KEY`] value for a persisted stall record.
pub const OUTCOME_STALLED: &str = "stalled";

/// [`OUTCOME_KEY`] value for a persisted invariant-violation record.
pub const OUTCOME_AUDIT: &str = "invariant-violated";

/// A persisted `.res` record: either the completed result of a job, or
/// the diagnostic of a job the liveness watchdog killed — persisted so
/// a resumed server/suite can *explain* an orphaned job's failure
/// instead of silently re-running a deterministic deadlock.
#[derive(Clone, Debug)]
pub enum ResultRecord {
    /// The job finished; its full result.
    Completed(SystemResult),
    /// The job stalled; partial statistics plus the forensic report.
    Stalled {
        /// Statistics up to the stall point.
        partial: SystemResult,
        /// Forensic snapshot of every core at the stall point.
        report: StallReport,
    },
    /// An invariant-audit sweep stopped the job; partial statistics
    /// plus the violation forensics.
    InvariantViolated {
        /// Statistics up to the violating sweep.
        partial: SystemResult,
        /// Every violated invariant, with site and cycle.
        report: AuditReport,
    },
}

/// Writes the stall record of a job the liveness watchdog killed: the
/// `RCK1` envelope carrying the partial [`SystemResult`] followed by
/// the serialized [`StallReport`], with `outcome=stalled` in the meta
/// so readers can tell it apart from a completion record.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_stall_record(
    dir: &Path,
    config_digest: u64,
    partial: &SystemResult,
    report: &StallReport,
    meta: &[(String, String)],
) -> io::Result<PathBuf> {
    let mut w = SnapWriter::new();
    partial.save_snap(&mut w);
    report.save_snap(&mut w);
    let mut meta = meta.to_vec();
    meta.retain(|(k, _)| k != OUTCOME_KEY);
    meta.push((OUTCOME_KEY.to_string(), OUTCOME_STALLED.to_string()));
    let ck = Checkpoint {
        config_digest,
        cycle: partial.cycles,
        meta,
        state: w.into_bytes(),
    };
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{config_digest:016x}.{RESULT_EXTENSION}"));
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, ck.encode())?;
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Writes the record of a job the invariant auditor stopped: the
/// `RCK1` envelope carrying the partial [`SystemResult`] followed by
/// the serialized [`AuditReport`], with `outcome=invariant-violated`
/// in the meta.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_audit_record(
    dir: &Path,
    config_digest: u64,
    partial: &SystemResult,
    report: &AuditReport,
    meta: &[(String, String)],
) -> io::Result<PathBuf> {
    let mut w = SnapWriter::new();
    partial.save_snap(&mut w);
    report.save_snap(&mut w);
    let mut meta = meta.to_vec();
    meta.retain(|(k, _)| k != OUTCOME_KEY);
    meta.push((OUTCOME_KEY.to_string(), OUTCOME_AUDIT.to_string()));
    let ck = Checkpoint {
        config_digest,
        cycle: partial.cycles,
        meta,
        state: w.into_bytes(),
    };
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{config_digest:016x}.{RESULT_EXTENSION}"));
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, ck.encode())?;
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Reads whatever `.res` record exists for `config_digest` — completed
/// or stalled. Returns `None` when absent or unreadable — a corrupt
/// record simply means the job re-runs, never that wrong numbers are
/// reported.
#[must_use]
pub fn read_record(dir: &Path, config_digest: u64) -> Option<ResultRecord> {
    let path = dir.join(format!("{config_digest:016x}.{RESULT_EXTENSION}"));
    let bytes = fs::read(path).ok()?;
    let ck = Checkpoint::decode(&bytes).ok()?;
    if ck.config_digest != config_digest {
        return None;
    }
    let mut r = SnapReader::new(&ck.state);
    let result = SystemResult::load_snap(&mut r).ok()?;
    match ck.meta(OUTCOME_KEY) {
        Some(OUTCOME_STALLED) => {
            let report = StallReport::load_snap(&mut r).ok()?;
            Some(ResultRecord::Stalled {
                partial: result,
                report,
            })
        }
        Some(OUTCOME_AUDIT) => {
            let report = AuditReport::load_snap(&mut r).ok()?;
            Some(ResultRecord::InvariantViolated {
                partial: result,
                report,
            })
        }
        _ => Some(ResultRecord::Completed(result)),
    }
}

/// Reads a completion record written by [`write_result`]. Returns
/// `None` when absent, unreadable, or a *stall* record (a stalled job
/// never masquerades as a completed one).
#[must_use]
pub fn read_result(dir: &Path, config_digest: u64) -> Option<SystemResult> {
    match read_record(dir, config_digest) {
        Some(ResultRecord::Completed(res)) => Some(res),
        _ => None,
    }
}

/// What a checkpointed run did, for logs and metrics.
#[derive(Clone, Debug, Default)]
pub struct CkptRunInfo {
    /// The run was skipped entirely: a completion record existed.
    pub result_cached: bool,
    /// The run was skipped because a *stall* record existed: the job
    /// deterministically deadlocks and re-running it would only stall
    /// again, so the persisted diagnostic is replayed instead.
    pub stall_cached: bool,
    /// Cycle the run resumed from, when a valid checkpoint was found.
    pub resumed_from_cycle: Option<u64>,
    /// Checkpoints written during this run.
    pub checkpoints_written: u64,
    /// Corrupt/torn checkpoint files dropped during recovery.
    pub dropped_corrupt: u64,
    /// Checkpoint files GC'd (older than the keep window).
    pub gc_deleted: u64,
    /// Newest checkpoint file left on disk when the run stopped early
    /// (the resumable ref a deadline response can carry). `None` after
    /// a completed run: completion deletes the job's checkpoints.
    pub last_checkpoint: Option<PathBuf>,
}

/// Checkpointing policy for [`run_with_checkpoints`].
#[derive(Clone, Debug)]
pub struct CkptContext {
    /// Directory holding `*.rck` checkpoints and `*.res` records.
    pub dir: PathBuf,
    /// Snapshot cadence in cycles.
    pub cadence: u64,
    /// Checkpoints retained per job digest (older ones are GC'd).
    pub keep: usize,
}

impl CkptContext {
    /// A context with the default retention (2 checkpoints per job).
    #[must_use]
    pub fn new(dir: PathBuf, cadence: u64) -> Self {
        CkptContext {
            dir,
            cadence,
            keep: 2,
        }
    }
}

/// Runs one (workload, scheme) job with crash-safe checkpointing:
///
/// 1. a persisted record short-circuits the run: a completion record
///    replays the result (suite resume), a stall record replays the
///    original [`SimError::Stalled`] diagnostic — a deterministic
///    deadlock is explained, not silently re-run;
/// 2. otherwise the newest valid checkpoint of `digest` is restored
///    (corrupt/torn files are dropped and counted, never trusted);
/// 3. the run proceeds under `base` plus the checkpoint cadence,
///    writing a checkpoint file at every drained boundary and keeping
///    the newest `ctx.keep`;
/// 4. completion writes a result record and deletes the checkpoints; a
///    deadline/cancel stop leaves them for the next attempt and reports
///    the newest as `last_checkpoint`.
///
/// On resume, `base.fuel` is ignored: the per-core fuel remaining at
/// the checkpoint rides in the snapshot, so the original budget stays
/// exact across kills.
///
/// # Errors
///
/// Exactly as [`System::run_budgeted`]; filesystem problems degrade to
/// running without persistence, never to wrong results.
pub fn run_with_checkpoints(
    exp: &Experiment,
    workload: &Workload,
    secure: SecureConfig,
    base: &Budget,
    ctx: &CkptContext,
    meta: &[(String, String)],
    digest: u64,
) -> (Result<SystemResult, SimError>, CkptRunInfo) {
    let mut info = CkptRunInfo::default();
    match read_record(&ctx.dir, digest) {
        Some(ResultRecord::Completed(res)) => {
            info.result_cached = true;
            return (Ok(res), info);
        }
        Some(ResultRecord::Stalled { partial, report }) => {
            // A stall is deterministic for a given configuration:
            // replay the persisted forensics instead of burning the
            // watchdog window again just to rediscover the deadlock.
            info.stall_cached = true;
            let err = SimError::Stalled {
                partial: Box::new(partial),
                report: Box::new(report),
            };
            return (Err(err), info);
        }
        Some(ResultRecord::InvariantViolated { partial, report }) => {
            // Same replay discipline: the violation diagnostic is the
            // job's persisted outcome.
            info.stall_cached = true;
            let err = SimError::InvariantViolated {
                partial: Box::new(partial),
                report: Box::new(report),
            };
            return (Err(err), info);
        }
        None => {}
    }

    let mut sys = System::new(workload, exp.core, exp.mem, secure, exp.recon);
    let mut budget = Budget {
        checkpoint_every_cycles: Some(ctx.cadence),
        ..base.clone()
    };
    if let Ok(found) = scan(&ctx.dir) {
        // Only drop corrupt files belonging to THIS job: a sibling
        // job's checkpoint mid-write scans as corrupt, and deleting it
        // would throw away someone else's progress.
        let own = format!("{digest:016x}-");
        // Stale `.tmp` siblings (a kill between write and rename) are
        // litter, never loaded: sweep this job's own (checkpoint and
        // result-record temps share the digest prefix).
        let own_any = format!("{digest:016x}");
        if let Ok(rd) = fs::read_dir(&ctx.dir) {
            for e in rd.filter_map(Result::ok) {
                let p = e.path();
                let stale_tmp = p.extension().is_some_and(|x| x == "tmp")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with(&own_any));
                if stale_tmp {
                    let _ = fs::remove_file(&p);
                }
            }
        }
        for p in &found.corrupt {
            let mine = p
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&own));
            if mine && fs::remove_file(p).is_ok() {
                info.dropped_corrupt += 1;
            }
        }
        if let Some((path, ck)) = found.latest_for(digest) {
            if sys.restore_bytes(&ck.state).is_ok() {
                info.resumed_from_cycle = Some(ck.cycle);
                // The snapshot carries each core's remaining fuel.
                budget.fuel = None;
            } else {
                // A checkpoint that decodes but does not fit this
                // system's shape is stale: drop it and start over.
                let _ = fs::remove_file(path);
                info.dropped_corrupt += 1;
                sys = System::new(workload, exp.core, exp.mem, secure, exp.recon);
            }
        }
    }

    let mut written = 0u64;
    let mut gc_deleted = 0u64;
    let mut last = None;
    let r = sys.run_budgeted_checkpointed(exp.max_cycles, &budget, |cycle, bytes| {
        let ck = Checkpoint {
            config_digest: digest,
            cycle,
            meta: meta.to_vec(),
            state: bytes.to_vec(),
        };
        if let Ok(path) = write(&ctx.dir, &ck) {
            written += 1;
            last = Some(path);
            gc_deleted += gc(&ctx.dir, digest, ctx.keep).unwrap_or(0) as u64;
        }
    });
    info.checkpoints_written = written;
    info.gc_deleted = gc_deleted;
    info.last_checkpoint = last;
    match &r {
        Ok(res) => {
            let _ = write_result(&ctx.dir, digest, res, meta);
            let _ = delete_for_digest(&ctx.dir, digest);
            info.last_checkpoint = None;
        }
        Err(SimError::Stalled { partial, report }) => {
            // Persist the diagnostic: a restarted server can explain
            // this job's death instead of silently re-running it.
            let _ = write_stall_record(&ctx.dir, digest, partial, report, meta);
            let _ = delete_for_digest(&ctx.dir, digest);
            info.last_checkpoint = None;
        }
        Err(SimError::InvariantViolated { partial, report }) => {
            let _ = write_audit_record(&ctx.dir, digest, partial, report, meta);
            let _ = delete_for_digest(&ctx.dir, digest);
            info.last_checkpoint = None;
        }
        Err(_) => {}
    }
    (r, info)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: u64) -> Checkpoint {
        Checkpoint {
            config_digest: 0xABCD,
            cycle,
            meta: vec![
                ("bench".to_string(), "leela".to_string()),
                ("scheme".to_string(), "stt".to_string()),
            ],
            state: vec![1, 2, 3, 4, 5],
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("recon-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_result() -> SystemResult {
        SystemResult {
            completed: false,
            cycles: 9_000,
            cores: vec![],
            mem: recon_mem::MemStats::default(),
        }
    }

    fn sample_report() -> StallReport {
        StallReport {
            cycle: 9_000,
            window: 4_096,
            cores: vec![],
        }
    }

    #[test]
    fn stall_record_round_trips_and_hides_from_read_result() {
        let dir = tmpdir("stallrec");
        let partial = sample_result();
        let report = sample_report();
        let meta = vec![("bench".to_string(), "x".to_string())];
        write_stall_record(&dir, 0x77, &partial, &report, &meta).unwrap();
        // A stall record must never surface as a completed result.
        assert!(read_result(&dir, 0x77).is_none());
        match read_record(&dir, 0x77) {
            Some(ResultRecord::Stalled {
                partial: p,
                report: r,
            }) => {
                assert_eq!(p, partial);
                assert_eq!(r, report);
            }
            other => panic!("expected stalled record, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_record_still_reads_as_result() {
        let dir = tmpdir("complrec");
        let res = sample_result();
        write_result(&dir, 0x88, &res, &[]).unwrap();
        assert_eq!(read_result(&dir, 0x88), Some(res.clone()));
        assert!(matches!(
            read_record(&dir, 0x88),
            Some(ResultRecord::Completed(r)) if r == res
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn encode_decode_round_trips() {
        let ck = sample(42);
        let decoded = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(decoded, ck);
        assert_eq!(decoded.meta("bench"), Some("leela"));
        assert_eq!(decoded.meta("missing"), None);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample(42).encode();
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..cut]).is_err(),
                "torn record of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = sample(42).encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                Checkpoint::decode(&bad).is_err(),
                "flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn config_digest_separates_parts() {
        assert_ne!(config_digest(&["ab", "c"]), config_digest(&["a", "bc"]));
        assert_eq!(config_digest(&["a", "b"]), config_digest(&["a", "b"]));
    }

    #[test]
    fn file_names_sort_by_cycle() {
        let a = file_name(7, 99);
        let b = file_name(7, 100);
        assert!(a < b, "{a} < {b}");
    }

    #[test]
    fn scan_finds_latest_and_counts_corrupt() {
        let dir = tmpdir("scan");
        write(&dir, &sample(10)).unwrap();
        write(&dir, &sample(30)).unwrap();
        write(&dir, &sample(20)).unwrap();
        // A torn record and an empty file.
        fs::write(dir.join(file_name(0xABCD, 40)), &sample(40).encode()[..7]).unwrap();
        fs::write(dir.join(file_name(0xABCD, 50)), b"").unwrap();

        let scan = scan(&dir).unwrap();
        assert_eq!(scan.valid.len(), 3);
        assert_eq!(scan.corrupt.len(), 2);
        let (_, latest) = scan.latest_for(0xABCD).unwrap();
        assert_eq!(latest.cycle, 30, "corrupt newer files are skipped");
        assert!(scan.latest_for(0x9999).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_scans_empty() {
        let scan = scan(Path::new("/nonexistent/recon-ckpt")).unwrap();
        assert!(scan.valid.is_empty() && scan.corrupt.is_empty());
    }

    #[test]
    fn gc_keeps_newest_n() {
        let dir = tmpdir("gc");
        for cycle in [10, 20, 30, 40] {
            write(&dir, &sample(cycle)).unwrap();
        }
        let deleted = gc(&dir, 0xABCD, 2).unwrap();
        assert_eq!(deleted, 2);
        let scan = scan(&dir).unwrap();
        let cycles: Vec<u64> = scan.valid.iter().map(|(_, c)| c.cycle).collect();
        assert_eq!(cycles, vec![40, 30]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_for_digest_removes_corrupt_too() {
        let dir = tmpdir("del");
        write(&dir, &sample(10)).unwrap();
        fs::write(dir.join(file_name(0xABCD, 20)), b"junk").unwrap();
        let mut other = sample(99);
        other.config_digest = 0x1111;
        write(&dir, &other).unwrap();

        assert_eq!(delete_for_digest(&dir, 0xABCD).unwrap(), 2);
        let scan = scan(&dir).unwrap();
        assert_eq!(scan.valid.len(), 1, "other digest untouched");
        assert_eq!(scan.valid[0].1.config_digest, 0x1111);
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! MIPS scoreboard: how fast the simulator simulates.
//!
//! `recon bench-speed` measures three things and writes them to
//! `BENCH_speed.json`:
//!
//! 1. **Per-scheme throughput** — detailed-mode MIPS (committed
//!    instructions per host second) for each of the five schemes, plus
//!    the end-to-end wall-clock speedup of the same run when most of it
//!    is replaced by a functional fast-forward warmup
//!    ([`crate::System::fast_forward`]). The warm run's detailed region
//!    is checked byte-identical against a snapshot/restore replica, so
//!    the reported speedup never comes at the cost of a divergent
//!    result.
//! 2. **Functional-mode throughput** — MIPS of the straight-line
//!    interpreter over pre-decoded instructions, the engine behind
//!    fast-forward and `recon analyze`.
//! 3. **Microbenchmarks isolating each fast path** — pre-decoded
//!    stream lookups vs re-decoding at every fetch, packed u64
//!    reveal-mask batches vs per-word probe-and-set merges, and the
//!    `SparseMem` hot-page cache vs its page-alternating worst case.
//!
//! Timings are host-dependent by nature; everything else in the report
//! (instruction counts, warmup length, the identity verdicts, the
//! schema itself) is deterministic, which is what the golden-schema
//! test pins down.

use std::io::Write as _;
use std::time::Instant;

use recon::{MaskArray, RevealMask};
use recon_isa::{
    run_decoded, run_with, ArchState, DataMem, DecodedInst, DecodedProgram, SparseMem,
};
use recon_secure::SecureConfig;
use recon_workloads::{find, Benchmark, Scale, Suite};

use crate::audit::DEFAULT_AUDIT_EVERY_CYCLES;
use crate::error::Budget;
use crate::experiment::Experiment;
use crate::system::System;

/// Throughput of one scheme, detailed vs fast-forward-warmed.
#[derive(Clone, Debug)]
pub struct SchemeSpeed {
    /// The scheme configuration.
    pub scheme: SecureConfig,
    /// Instructions the full detailed run committed.
    pub instructions: u64,
    /// Host seconds of the full detailed run.
    pub detailed_seconds: f64,
    /// Host seconds of the warmed run (functional fast-forward plus
    /// the detailed tail).
    pub warm_seconds: f64,
    /// End-to-end wall-clock speedup: `detailed_seconds /
    /// warm_seconds`.
    pub speedup: f64,
    /// Whether the warm run's detailed region is byte-identical to a
    /// replica restored from a snapshot taken at the mode switch.
    pub identical: bool,
}

impl SchemeSpeed {
    /// Detailed-mode throughput in MIPS.
    #[must_use]
    pub fn detailed_mips(&self) -> f64 {
        mips(self.instructions, self.detailed_seconds)
    }
}

/// Cost of the invariant auditor at its default cadence. The sweep is
/// pure observation, so the *simulated* result must be identical; the
/// cost is host wall-clock only, and it is measured directly — the
/// sweep timed in isolation on end-of-run state, scaled by the number
/// of sweeps the run performs — because differencing two short
/// wall-clock runs cannot resolve a ~1% effect through scheduler
/// noise.
#[derive(Clone, Debug)]
pub struct AuditSpeed {
    /// Sweep cadence in simulated cycles.
    pub audit_every: u64,
    /// Sweeps a full run performs at this cadence.
    pub sweeps: u64,
    /// Host seconds those sweeps cost (per-sweep time × `sweeps`).
    pub sweep_seconds: f64,
    /// Host seconds of the unaudited detailed run (best of repeats).
    pub run_seconds: f64,
    /// Whether an audited run's result (cycles, stats, everything)
    /// equals the unaudited run's.
    pub identical: bool,
}

impl AuditSpeed {
    /// Host-time overhead of auditing, as a fraction of the unaudited
    /// run (0.02 = 2%).
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        if self.run_seconds > 0.0 {
            self.sweep_seconds / self.run_seconds
        } else {
            0.0
        }
    }
}

/// One microbenchmark isolating a single optimization: the same work
/// through the slow path and the fast path.
#[derive(Clone, Debug)]
pub struct MicroBench {
    /// Which fast path this isolates (`decode`, `mask`, `mem`).
    pub name: &'static str,
    /// What the slow side does.
    pub baseline: &'static str,
    /// What the fast side does.
    pub optimized: &'static str,
    /// Slow-side throughput, million operations per second.
    pub baseline_mops: f64,
    /// Fast-side throughput, million operations per second.
    pub optimized_mops: f64,
}

impl MicroBench {
    /// Fast-over-slow throughput ratio.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.baseline_mops > 0.0 {
            self.optimized_mops / self.baseline_mops
        } else {
            0.0
        }
    }
}

/// The full scoreboard, written as `BENCH_speed.json`.
#[derive(Clone, Debug)]
pub struct SpeedReport {
    /// Workload scale the runs used (`quick`/`paper`).
    pub scale: &'static str,
    /// Suite of the measured benchmark.
    pub suite: &'static str,
    /// The measured benchmark.
    pub bench: &'static str,
    /// Instructions the functional interpreter executed to halt.
    pub functional_instructions: u64,
    /// Host seconds of the functional run (including the one-time
    /// decode).
    pub functional_seconds: f64,
    /// Warmup length the warmed runs fast-forwarded (the first ~95% of
    /// the program).
    pub fast_forward: u64,
    /// Per-scheme detailed/warmed throughput.
    pub schemes: Vec<SchemeSpeed>,
    /// Per-optimization isolation microbenchmarks.
    pub micro: Vec<MicroBench>,
    /// Invariant-auditor cost at the default cadence.
    pub audit: AuditSpeed,
}

fn mips(instructions: u64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        instructions as f64 / 1e6 / seconds
    } else {
        0.0
    }
}

impl SpeedReport {
    /// Functional-mode throughput in MIPS.
    #[must_use]
    pub fn functional_mips(&self) -> f64 {
        mips(self.functional_instructions, self.functional_seconds)
    }

    /// Functional MIPS over the *fastest* scheme's detailed MIPS — the
    /// conservative form of the "functional is at least N× detailed"
    /// claim.
    #[must_use]
    pub fn functional_over_detailed(&self) -> f64 {
        let best = self
            .schemes
            .iter()
            .map(SchemeSpeed::detailed_mips)
            .fold(0.0f64, f64::max);
        if best > 0.0 {
            self.functional_mips() / best
        } else {
            0.0
        }
    }

    /// The *smallest* per-scheme end-to-end speedup — the headline
    /// number, conservative over all five schemes.
    #[must_use]
    pub fn end_to_end_speedup(&self) -> f64 {
        self.schemes
            .iter()
            .map(|s| s.speedup)
            .fold(f64::INFINITY, f64::min)
            .min(f64::MAX)
    }

    /// Whether every scheme's warm detailed region matched its
    /// snapshot/restore replica byte for byte.
    #[must_use]
    pub fn all_identical(&self) -> bool {
        self.schemes.iter().all(|s| s.identical)
    }

    /// Runs the full scoreboard on the named benchmark at the current
    /// `RECON_SCALE`. `quick` shrinks repeat counts (CI smoke); the
    /// measured schema and verdicts are identical either way.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark is unknown, is not single-threaded, or
    /// if a functional run faults — all programmer errors in the
    /// harness, not runtime conditions.
    #[must_use]
    pub fn measure(suite: Suite, bench: &str, quick: bool) -> SpeedReport {
        let scale = Scale::from_env();
        let b = find(suite, bench, scale).unwrap_or_else(|| panic!("no benchmark '{bench}'"));
        assert_eq!(
            b.workload.num_threads(),
            1,
            "the speed scoreboard runs single-thread benchmarks"
        );

        // Functional mode: decode once, interpret to halt.
        let t0 = Instant::now();
        let decoded = DecodedProgram::decode(&b.workload.program);
        let mut mem = SparseMem::from_image(&b.workload.program.image);
        let mut st = ArchState::at_entry(&b.workload.program);
        let functional_instructions =
            run_decoded(&decoded, &mut st, &mut mem, u64::MAX).expect("functional run faults");
        assert!(st.halted, "benchmark must halt for the scoreboard");
        let functional_seconds = t0.elapsed().as_secs_f64();

        // Warmup covers all but the last ~5% of the program (with a
        // floor so the detailed region always exercises the pipeline).
        let tail = (functional_instructions / 20).max(500);
        let fast_forward = functional_instructions.saturating_sub(tail);

        let exp = Experiment::default();
        let schemes = [
            SecureConfig::unsafe_baseline(),
            SecureConfig::nda(),
            SecureConfig::nda_recon(),
            SecureConfig::stt(),
            SecureConfig::stt_recon(),
        ]
        .into_iter()
        .map(|scheme| measure_scheme(&exp, &b, scheme, fast_forward))
        .collect();

        SpeedReport {
            scale: match scale {
                Scale::Quick => "quick",
                Scale::Paper => "paper",
            },
            suite: "spec2017",
            bench: b.name,
            functional_instructions,
            functional_seconds,
            fast_forward,
            schemes,
            micro: vec![micro_decode(&b, quick), micro_mask(quick), micro_mem(quick)],
            audit: measure_audit(&exp, &b, quick),
        }
    }

    /// Serializes the scoreboard (hand-rolled: the build is
    /// dependency-free). Field order is the schema; the golden test
    /// pins it.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(2048);
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(s, "  \"suite\": \"{}\",", self.suite);
        let _ = writeln!(s, "  \"bench\": \"{}\",", self.bench);
        let _ = writeln!(
            s,
            "  \"functional_instructions\": {},",
            self.functional_instructions
        );
        let _ = writeln!(
            s,
            "  \"functional_seconds\": {:.6},",
            self.functional_seconds
        );
        let _ = writeln!(s, "  \"functional_mips\": {:.3},", self.functional_mips());
        let _ = writeln!(s, "  \"fast_forward\": {},", self.fast_forward);
        let _ = writeln!(
            s,
            "  \"functional_over_detailed\": {:.3},",
            self.functional_over_detailed()
        );
        let _ = writeln!(
            s,
            "  \"end_to_end_speedup\": {:.3},",
            self.end_to_end_speedup()
        );
        let _ = writeln!(
            s,
            "  \"detailed_region_identical\": {},",
            self.all_identical()
        );
        let _ = writeln!(s, "  \"schemes\": [");
        let n = self.schemes.len();
        for (i, sc) in self.schemes.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"scheme\": \"{}\", \"instructions\": {}, \"detailed_seconds\": {:.6}, \"detailed_mips\": {:.3}, \"warm_seconds\": {:.6}, \"speedup\": {:.3}, \"identical\": {}}}{comma}",
                sc.scheme.label(),
                sc.instructions,
                sc.detailed_seconds,
                sc.detailed_mips(),
                sc.warm_seconds,
                sc.speedup,
                sc.identical,
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(
            s,
            "  \"audit\": {{\"audit_every\": {}, \"sweeps\": {}, \"sweep_seconds\": {:.6}, \"run_seconds\": {:.6}, \"overhead_fraction\": {:.4}, \"identical\": {}}},",
            self.audit.audit_every,
            self.audit.sweeps,
            self.audit.sweep_seconds,
            self.audit.run_seconds,
            self.audit.overhead_fraction(),
            self.audit.identical,
        );
        let _ = writeln!(s, "  \"micro\": [");
        let n = self.micro.len();
        for (i, m) in self.micro.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"name\": \"{}\", \"baseline\": \"{}\", \"optimized\": \"{}\", \"baseline_mops\": {:.3}, \"optimized_mops\": {:.3}, \"speedup\": {:.3}}}{comma}",
                m.name,
                m.baseline,
                m.optimized,
                m.baseline_mops,
                m.optimized_mops,
                m.speedup(),
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Writes [`SpeedReport::to_json`] to `path`, overwriting.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

fn measure_scheme(
    exp: &Experiment,
    b: &Benchmark,
    scheme: SecureConfig,
    fast_forward: u64,
) -> SchemeSpeed {
    // Full detailed run, cold.
    let t0 = Instant::now();
    let mut sys = System::new(&b.workload, exp.core, exp.mem, scheme, exp.recon);
    let detailed = sys.run(exp.max_cycles);
    let detailed_seconds = t0.elapsed().as_secs_f64();
    assert!(detailed.completed, "detailed run must complete");

    // Warmed run: functional fast-forward, then the detailed tail. The
    // snapshot at the mode switch is taken off the clock — it exists
    // only to prove the detailed region is well-defined.
    let t0 = Instant::now();
    let mut warm = System::new(&b.workload, exp.core, exp.mem, scheme, exp.recon);
    warm.fast_forward(fast_forward);
    let ff_seconds = t0.elapsed().as_secs_f64();
    let snap = warm.snapshot_bytes();
    let t1 = Instant::now();
    let warm_result = warm.run(exp.max_cycles);
    let warm_seconds = ff_seconds + t1.elapsed().as_secs_f64();
    assert!(warm_result.completed, "warm run must complete");

    // Byte-identity of the detailed region: a replica restored from
    // the mode-switch snapshot must reproduce the warm result exactly.
    let mut replica = System::new(&b.workload, exp.core, exp.mem, scheme, exp.recon);
    replica
        .restore_bytes(&snap)
        .expect("mode-switch snapshot restores");
    let identical = replica.run(exp.max_cycles) == warm_result;

    SchemeSpeed {
        scheme,
        instructions: detailed.committed(),
        detailed_seconds,
        warm_seconds,
        speedup: if warm_seconds > 0.0 {
            detailed_seconds / warm_seconds
        } else {
            0.0
        },
        identical,
    }
}

/// Measures the auditor's cost on the heaviest scheme (STT+ReCon has
/// the most state to sweep) at the default cadence.
///
/// The run itself is timed best-of-repeats without the auditor; the
/// sweep is then timed in isolation on the run's *final* state (caches
/// full, queues drained — representative of a steady-state sweep) and
/// scaled by the sweep count. A full audited run also executes, untimed,
/// to assert the sweep never perturbs the simulated result.
fn measure_audit(exp: &Experiment, b: &Benchmark, quick: bool) -> AuditSpeed {
    let scheme = SecureConfig::stt_recon();
    let repeats = if quick { 2 } else { 5 };

    let mut run_seconds = f64::MAX;
    let mut sys = System::new(&b.workload, exp.core, exp.mem, scheme, exp.recon);
    let mut plain_result = sys
        .run_budgeted(exp.max_cycles, &Budget::default())
        .expect("unaudited run completes");
    for _ in 1..repeats {
        let mut s = System::new(&b.workload, exp.core, exp.mem, scheme, exp.recon);
        let t0 = Instant::now();
        plain_result = s
            .run_budgeted(exp.max_cycles, &Budget::default())
            .expect("unaudited run completes");
        run_seconds = run_seconds.min(t0.elapsed().as_secs_f64());
        sys = s;
    }

    // Per-sweep cost on the final state, amortized over enough calls
    // that the clock resolution is irrelevant.
    let sweep_repeats = if quick { 16 } else { 64 };
    let t0 = Instant::now();
    let mut violations = 0usize;
    for _ in 0..sweep_repeats {
        violations += sys.audit().len();
    }
    let per_sweep = t0.elapsed().as_secs_f64() / f64::from(sweep_repeats);
    assert_eq!(violations, 0, "healthy end-of-run state must audit clean");
    let sweeps = plain_result.cycles / DEFAULT_AUDIT_EVERY_CYCLES + 1;

    let budget = Budget {
        audit_every_cycles: Some(DEFAULT_AUDIT_EVERY_CYCLES),
        ..Budget::default()
    };
    let mut audited = System::new(&b.workload, exp.core, exp.mem, scheme, exp.recon);
    let audited_result = audited
        .run_budgeted(exp.max_cycles, &budget)
        .expect("audited clean run completes (zero false positives)");

    AuditSpeed {
        audit_every: DEFAULT_AUDIT_EVERY_CYCLES,
        sweeps,
        sweep_seconds: per_sweep * sweeps as f64,
        run_seconds,
        identical: plain_result == audited_result,
    }
}

/// What the front-end consumes from a decoded instruction — summed so
/// the decode work in [`micro_decode`] is observable and cannot be
/// dead-code-eliminated.
#[inline]
fn fetch_digest(d: &DecodedInst) -> u64 {
    d.srcs[0].map_or(0, |r| r.index() as u64)
        + d.srcs[1].map_or(0, |r| r.index() as u64)
        + d.dst.map_or(0, |r| r.index() as u64)
        + u64::from(d.is_load)
        + u64::from(d.is_control)
}

/// Per-fetch re-decode vs the pre-decoded stream, over the *executed*
/// instruction sequence (what the fetch stage actually sees), not the
/// static code order — so the table lookups are data-dependent and the
/// comparison cannot be vectorized away.
fn micro_decode(b: &Benchmark, quick: bool) -> MicroBench {
    let repeats = if quick { 20 } else { 200 };
    let program = &b.workload.program;

    // The real fetch stream: every instruction index the program
    // executes, in order.
    let mut pcs: Vec<u32> = Vec::new();
    {
        let mut mem = SparseMem::from_image(&program.image);
        run_with(program, &mut mem, usize::MAX, |r| {
            pcs.push(r.index as u32);
        })
        .expect("fetch-stream run");
    }

    // Baseline: what fetch did before — decode the fetched instruction
    // on every fetch.
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..repeats {
        for &pc in &pcs {
            let d = DecodedInst::decode(program.code[pc as usize]);
            acc = acc.wrapping_add(fetch_digest(&d));
        }
    }
    let fetches = (repeats * pcs.len()) as u64;
    let baseline_mops = fetches as f64 / 1e6 / t0.elapsed().as_secs_f64();

    // Optimized: decode once, fetch from the dense table.
    let decoded = DecodedProgram::decode(program);
    let t0 = Instant::now();
    let mut acc2 = 0u64;
    for _ in 0..repeats {
        for &pc in &pcs {
            let d = decoded.get(pc as usize).expect("pc in range");
            acc2 = acc2.wrapping_add(fetch_digest(d));
        }
    }
    let optimized_mops = fetches as f64 / 1e6 / t0.elapsed().as_secs_f64();
    assert_eq!(std::hint::black_box(acc), std::hint::black_box(acc2));

    MicroBench {
        name: "decode",
        baseline: "re-decode at every fetch",
        optimized: "pre-decoded stream lookup",
        baseline_mops,
        optimized_mops,
    }
}

/// Packed u64 reveal-mask batches vs per-line merges over the same
/// pseudo-random mask population.
fn micro_mask(quick: bool) -> MicroBench {
    const LINES: usize = 4096;
    let repeats = if quick { 200 } else { 2000 };

    // Deterministic mask population (xorshift64).
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let patterns: Vec<u8> = (0..LINES).map(|_| (next() & 0xFF) as u8).collect();

    // Baseline: the shape the mem-side merge loops had before the
    // packed arrays — probe each word of each line and set it
    // individually (a branch and a bit op per word).
    let src: Vec<RevealMask> = patterns.iter().map(|&p| RevealMask::from_bits(p)).collect();
    let mut dst = vec![RevealMask::all_concealed(); LINES];
    let t0 = Instant::now();
    for _ in 0..repeats {
        for (d, s) in dst.iter_mut().zip(&src) {
            for w in 0..8 {
                if s.is_revealed(w) {
                    d.reveal(w);
                }
            }
        }
    }
    let merges = (repeats * LINES) as u64;
    let baseline_mops = merges as f64 / 1e6 / t0.elapsed().as_secs_f64();
    assert!(dst.iter().zip(&src).all(|(d, s)| d.bits() == s.bits()));

    // Optimized: the packed array, eight line merges per u64 OR.
    let mut packed_src = MaskArray::new(LINES);
    for (line, &p) in patterns.iter().enumerate() {
        packed_src.set(line, RevealMask::from_bits(p));
    }
    let mut packed_dst = MaskArray::new(LINES);
    let t0 = Instant::now();
    for _ in 0..repeats {
        packed_dst.merge_or_from(&packed_src);
    }
    let optimized_mops = merges as f64 / 1e6 / t0.elapsed().as_secs_f64();
    assert_eq!(packed_dst.count_revealed(), packed_src.count_revealed());

    MicroBench {
        name: "mask",
        baseline: "per-word probe-and-set merge",
        optimized: "packed u64 batch merge",
        baseline_mops,
        optimized_mops,
    }
}

/// The `SparseMem` hot-page cache: page-local sweeps (every access
/// after the first hits the cached page) vs a page-alternating pattern
/// that defeats a single-entry cache and falls back to the map probe.
fn micro_mem(quick: bool) -> MicroBench {
    const WORDS: u64 = 512; // one 4 KiB page
    let repeats = if quick { 2_000 } else { 20_000 };

    let mut m = SparseMem::new();
    // Touch two pages far apart so both are resident.
    m.write(0, 1);
    m.write(1 << 20, 1);

    // Baseline: alternate pages on every access — each one changes the
    // page, so the hot-page cache never hits.
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..repeats {
        for w in 0..WORDS {
            acc = acc.wrapping_add(m.read(w * 8));
            acc = acc.wrapping_add(m.read((1 << 20) + w * 8));
        }
    }
    let ops = repeats * WORDS * 2;
    let baseline_mops = ops as f64 / 1e6 / t0.elapsed().as_secs_f64();

    // Optimized: the same number of reads, page-local sweeps.
    let t0 = Instant::now();
    for _ in 0..repeats {
        for w in 0..WORDS {
            acc = acc.wrapping_add(m.read(w * 8));
        }
        for w in 0..WORDS {
            acc = acc.wrapping_add(m.read((1 << 20) + w * 8));
        }
    }
    let optimized_mops = ops as f64 / 1e6 / t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);

    MicroBench {
        name: "mem",
        baseline: "page-alternating probes",
        optimized: "page-local sweeps (hot-page cache)",
        baseline_mops,
        optimized_mops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mips_handles_zero_time() {
        assert_eq!(mips(1000, 0.0), 0.0);
        assert!((mips(2_000_000, 2.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn micro_speedup_handles_zero_baseline() {
        let m = MicroBench {
            name: "x",
            baseline: "a",
            optimized: "b",
            baseline_mops: 0.0,
            optimized_mops: 5.0,
        };
        assert_eq!(m.speedup(), 0.0);
    }

    #[test]
    fn report_aggregates_are_conservative() {
        let sc = |detailed_seconds: f64, speedup: f64, identical: bool| SchemeSpeed {
            scheme: SecureConfig::stt(),
            instructions: 1_000_000,
            detailed_seconds,
            warm_seconds: detailed_seconds / speedup,
            speedup,
            identical,
        };
        let r = SpeedReport {
            scale: "quick",
            suite: "spec2017",
            bench: "mcf",
            functional_instructions: 10_000_000,
            functional_seconds: 1.0,
            fast_forward: 9_500_000,
            schemes: vec![sc(2.0, 8.0, true), sc(1.0, 6.0, true)],
            micro: vec![],
            audit: AuditSpeed {
                audit_every: DEFAULT_AUDIT_EVERY_CYCLES,
                sweeps: 100,
                sweep_seconds: 0.01,
                run_seconds: 1.0,
                identical: true,
            },
        };
        // functional 10 MIPS; fastest detailed is 1 MIPS → 10×.
        assert!((r.functional_over_detailed() - 10.0).abs() < 1e-9);
        // Headline is the smallest per-scheme speedup.
        assert!((r.end_to_end_speedup() - 6.0).abs() < 1e-9);
        assert!(r.all_identical());
        let mut bad = r.clone();
        bad.schemes[1].identical = false;
        assert!(!bad.all_identical());
    }
}

//! Run budgets and simulation errors: per-job deadlines (fuel and
//! cycle caps) plus cooperative cancellation, the mechanism `recon
//! serve` uses to kill a stuck or oversized job cleanly partway
//! through simulation while preserving its partial statistics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::audit::AuditReport;
use crate::stall::StallReport;
use crate::system::SystemResult;

/// How often (in cycles) a budgeted run polls its cancellation flag.
/// Coarse enough to stay off the hot path, fine enough that a cancel
/// lands within microseconds of simulated work.
pub const CANCEL_CHECK_INTERVAL: u64 = 1 << 12;

/// Default liveness-watchdog window: a run in which **no core commits
/// an instruction** for this many consecutive cycles is declared
/// stalled ([`SimError::Stalled`]) with a forensic [`StallReport`].
///
/// The window is sized orders of magnitude above any legitimate commit
/// gap in this model (the worst case — a full store buffer draining at
/// one store per cycle behind a chain of directory misses — resolves in
/// thousands of cycles, not hundreds of thousands), so a trip is a
/// genuine deadlock, not a slow patch. The watchdog is **on by
/// default**; see [`Budget::watchdog_cycles`] to tune or disable it.
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 1 << 18;

/// Resource limits applied to one simulation run.
///
/// The default budget is unlimited: [`crate::System::run`] is exactly
/// `run_budgeted` under `Budget::default()`.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Per-core committed-instruction cap (the job's *fuel*). Threaded
    /// into `recon_cpu::Core`'s commit loop, so the cap is exact: the
    /// core freezes after committing this many instructions.
    pub fuel: Option<u64>,
    /// Overrides the experiment's cycle budget when set.
    pub max_cycles: Option<u64>,
    /// Cooperative cancellation: when the flag turns `true` the run
    /// stops at the next [`CANCEL_CHECK_INTERVAL`] boundary with
    /// [`SimError::Cancelled`].
    pub cancel: Option<Arc<AtomicBool>>,
    /// Checkpoint cadence in cycles: when set, a checkpointed run
    /// ([`crate::System::run_budgeted_checkpointed`]) drains the
    /// pipelines and emits a snapshot every this-many cycles. The
    /// cadence perturbs microarchitectural timing (draining stalls
    /// fetch), so it is part of the run configuration: resume
    /// determinism holds between runs using the *same* cadence.
    pub checkpoint_every_cycles: Option<u64>,
    /// Functional warmup: execute this many instructions in fast
    /// functional mode ([`crate::System::fast_forward`]) before entering
    /// detailed timing. Applied only when the system is *fresh* (cycle
    /// 0, nothing committed); a run resumed from a checkpoint already
    /// carries its warmup and skips it. The warmup length changes every
    /// result, so it is part of any content-addressed run identity
    /// (spec digests, result records).
    pub fast_forward: Option<u64>,
    /// Liveness-watchdog window in cycles. `None` (the default) arms
    /// the watchdog at [`DEFAULT_WATCHDOG_CYCLES`]; `Some(0)` disables
    /// it; `Some(n)` uses a custom window. When no core commits for a
    /// full window the run stops with [`SimError::Stalled`] carrying a
    /// structured [`StallReport`] instead of silently burning its fuel
    /// budget.
    pub watchdog_cycles: Option<u64>,
    /// Invariant-audit cadence in cycles: when set, the run sweeps
    /// every layer's internal invariants (see [`crate::audit`]) at this
    /// cadence and stops with [`SimError::InvariantViolated`] on the
    /// first non-empty sweep. `None` (the default) disables auditing;
    /// the sweep is pure observation, so — unlike the checkpoint
    /// cadence — it does not perturb timing of a clean run.
    pub audit_every_cycles: Option<u64>,
}

impl Budget {
    /// A budget that only caps committed instructions per core.
    #[must_use]
    pub fn with_fuel(fuel: u64) -> Self {
        Budget {
            fuel: Some(fuel),
            ..Budget::default()
        }
    }

    /// Whether the cancellation flag (if any) has been raised.
    #[must_use]
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// The effective watchdog window: the default when unset, `None`
    /// when explicitly disabled with `Some(0)`.
    #[must_use]
    pub fn effective_watchdog(&self) -> Option<u64> {
        match self.watchdog_cycles {
            None => Some(DEFAULT_WATCHDOG_CYCLES),
            Some(0) => None,
            Some(n) => Some(n),
        }
    }
}

/// Why a budgeted run was stopped before completing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeadlineReason {
    /// A core exhausted its committed-instruction budget.
    Fuel,
    /// The run hit its cycle cap with at least one core unfinished.
    MaxCycles,
}

impl core::fmt::Display for DeadlineReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            DeadlineReason::Fuel => "fuel",
            DeadlineReason::MaxCycles => "max_cycles",
        })
    }
}

/// A simulation run that did not complete. Both variants carry the
/// partial [`SystemResult`] accumulated up to the stop point
/// (`completed == false`), so callers can report how far a killed job
/// got. The result is boxed to keep the error (and every
/// `Result<SystemResult, SimError>`) small.
#[derive(Clone, Debug)]
pub enum SimError {
    /// The run exceeded its fuel or cycle deadline.
    DeadlineExceeded {
        /// Statistics up to the stop point.
        partial: Box<SystemResult>,
        /// Which budget was exhausted.
        reason: DeadlineReason,
    },
    /// The run was cancelled via [`Budget::cancel`].
    Cancelled {
        /// Statistics up to the stop point.
        partial: Box<SystemResult>,
    },
    /// The liveness watchdog fired: no core committed an instruction
    /// for a full watchdog window — the simulation is deadlocked (or
    /// pathologically stuck), and `report` explains why, per core.
    Stalled {
        /// Statistics up to the stall point.
        partial: Box<SystemResult>,
        /// Forensic snapshot of every core at the stall point.
        report: Box<StallReport>,
    },
    /// An invariant-audit sweep ([`Budget::audit_every_cycles`]) found
    /// the simulator's internal state inconsistent — state was
    /// corrupted from outside the model (an injected soft error, a bad
    /// restore, or a simulator bug). `report` lists every violated
    /// invariant with forensics.
    InvariantViolated {
        /// Statistics up to the violating sweep.
        partial: Box<SystemResult>,
        /// Every violation the sweep found, with site and cycle.
        report: Box<AuditReport>,
    },
}

impl SimError {
    /// The partial result, consuming the error.
    #[must_use]
    pub fn into_partial(self) -> SystemResult {
        match self {
            SimError::DeadlineExceeded { partial, .. }
            | SimError::Cancelled { partial }
            | SimError::Stalled { partial, .. }
            | SimError::InvariantViolated { partial, .. } => *partial,
        }
    }

    /// The partial result, by reference.
    #[must_use]
    pub fn partial(&self) -> &SystemResult {
        match self {
            SimError::DeadlineExceeded { partial, .. }
            | SimError::Cancelled { partial }
            | SimError::Stalled { partial, .. }
            | SimError::InvariantViolated { partial, .. } => partial,
        }
    }

    /// The stall report, when this is a watchdog trip.
    #[must_use]
    pub fn stall_report(&self) -> Option<&StallReport> {
        match self {
            SimError::Stalled { report, .. } => Some(report),
            _ => None,
        }
    }

    /// The audit report, when this is an invariant violation.
    #[must_use]
    pub fn audit_report(&self) -> Option<&AuditReport> {
        match self {
            SimError::InvariantViolated { report, .. } => Some(report),
            _ => None,
        }
    }
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::DeadlineExceeded { partial, reason } => write!(
                f,
                "deadline exceeded ({reason}) after {} cycles / {} committed instructions",
                partial.cycles,
                partial.committed()
            ),
            SimError::Cancelled { partial } => {
                write!(f, "cancelled after {} cycles", partial.cycles)
            }
            SimError::Stalled { report, .. } => write!(f, "{}", report.summary()),
            SimError::InvariantViolated { report, .. } => write!(f, "{}", report.summary()),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited_and_uncancelled() {
        let b = Budget::default();
        assert!(b.fuel.is_none());
        assert!(b.max_cycles.is_none());
        assert!(!b.cancelled());
    }

    #[test]
    fn cancel_flag_reads_through() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget {
            cancel: Some(Arc::clone(&flag)),
            ..Budget::default()
        };
        assert!(!b.cancelled());
        flag.store(true, Ordering::Relaxed);
        assert!(b.cancelled());
    }

    #[test]
    fn error_display_names_the_reason() {
        let partial = SystemResult {
            completed: false,
            cycles: 42,
            cores: Vec::new(),
            mem: Default::default(),
        };
        let e = SimError::DeadlineExceeded {
            partial: Box::new(partial),
            reason: DeadlineReason::Fuel,
        };
        let s = e.to_string();
        assert!(s.contains("fuel"), "{s}");
        assert!(s.contains("42"), "{s}");
    }
}

//! Checkpoint/resume determinism: a run restored from any checkpoint
//! and continued must be indistinguishable — equal statistics and
//! byte-identical later snapshots — from the same run left
//! uninterrupted, for every scheme in the paper's matrix on several
//! workloads.

use recon::ReconConfig;
use recon_cpu::CoreConfig;
use recon_mem::MemConfig;
use recon_secure::SecureConfig;
use recon_sim::{Budget, System, SystemResult};
use recon_workloads::gen::parallel::{generate, ParKind, ParallelParams};
use recon_workloads::Workload;

const MAX_CYCLES: u64 = 10_000_000;
const CADENCE: u64 = 400;

fn workloads() -> Vec<(&'static str, Workload)> {
    [
        ("shared-chase", ParKind::SharedChase),
        ("data-parallel", ParKind::DataParallel { rotate: true }),
        ("producer-consumer", ParKind::ProducerConsumer),
    ]
    .into_iter()
    .map(|(name, kind)| {
        (
            name,
            generate(ParallelParams {
                kind,
                slots: 64,
                cond_lines: 4,
                passes: 2,
                seed: 1,
            }),
        )
    })
    .collect()
}

fn schemes() -> [SecureConfig; 5] {
    [
        SecureConfig::unsafe_baseline(),
        SecureConfig::nda(),
        SecureConfig::nda_recon(),
        SecureConfig::stt(),
        SecureConfig::stt_recon(),
    ]
}

fn fresh(w: &Workload, secure: SecureConfig) -> System {
    System::new(
        w,
        CoreConfig::tiny(),
        MemConfig::scaled(),
        secure,
        ReconConfig::default(),
    )
}

fn ckpt_budget() -> Budget {
    Budget {
        checkpoint_every_cycles: Some(CADENCE),
        ..Budget::default()
    }
}

/// Runs to completion with checkpointing on, collecting every snapshot.
fn run_full(w: &Workload, secure: SecureConfig) -> (SystemResult, Vec<(u64, Vec<u8>)>) {
    let mut sys = fresh(w, secure);
    let mut snaps = Vec::new();
    let r = sys
        .run_budgeted_checkpointed(MAX_CYCLES, &ckpt_budget(), |cycle, bytes| {
            snaps.push((cycle, bytes.to_vec()));
        })
        .expect("workload completes");
    (r, snaps)
}

#[test]
fn resume_equals_uninterrupted_for_every_scheme_and_workload() {
    for (name, w) in &workloads() {
        for secure in schemes() {
            let (full, snaps) = run_full(w, secure);
            assert!(
                snaps.len() >= 2,
                "{name}/{secure}: want >=2 checkpoints, got {}",
                snaps.len()
            );

            // Resume from the middle checkpoint, as a kill would.
            let (cycle, bytes) = &snaps[snaps.len() / 2];
            let mut sys = fresh(w, secure);
            sys.restore_bytes(bytes)
                .unwrap_or_else(|e| panic!("{name}/{secure}: restore failed: {e}"));
            assert_eq!(sys.cycle(), *cycle, "{name}/{secure}");

            let mut resumed_snaps = Vec::new();
            let resumed = sys
                .run_budgeted_checkpointed(MAX_CYCLES, &ckpt_budget(), |c, b| {
                    resumed_snaps.push((c, b.to_vec()));
                })
                .expect("resumed run completes");

            assert_eq!(
                resumed, full,
                "{name}/{secure}: resumed result must equal the uninterrupted run"
            );

            // Every later checkpoint the resumed run emits must be
            // byte-identical to the uninterrupted run's at that cycle.
            for (c, b) in &resumed_snaps {
                let original = snaps
                    .iter()
                    .find(|(oc, _)| oc == c)
                    .unwrap_or_else(|| panic!("{name}/{secure}: no original snapshot at {c}"));
                assert_eq!(
                    &original.1, b,
                    "{name}/{secure}: snapshot at cycle {c} diverged"
                );
            }
            assert_eq!(
                resumed_snaps.len(),
                snaps.len() - snaps.len() / 2 - 1,
                "{name}/{secure}: resumed run must hit the same later boundaries"
            );
        }
    }
}

#[test]
fn resume_from_every_checkpoint_reaches_the_same_result() {
    // One scheme, every checkpoint: the guarantee holds wherever the
    // kill lands, not just in the middle.
    let (_, w) = &workloads()[0];
    let secure = SecureConfig::stt_recon();
    let (full, snaps) = run_full(w, secure);
    for (cycle, bytes) in &snaps {
        let mut sys = fresh(w, secure);
        sys.restore_bytes(bytes).expect("restore");
        let r = sys
            .run_budgeted_checkpointed(MAX_CYCLES, &ckpt_budget(), |_, _| {})
            .expect("completes");
        assert_eq!(r, full, "resume from cycle {cycle} diverged");
    }
}

#[test]
fn restored_fuel_is_preserved_across_resume() {
    // A fuel-capped run checkpointed mid-flight must, after resume with
    // `fuel: None`, stop at exactly the same commit count as the
    // uninterrupted capped run: remaining fuel rides in the snapshot.
    let (_, w) = &workloads()[0];
    let secure = SecureConfig::stt();
    let budget = Budget {
        fuel: Some(1_200),
        checkpoint_every_cycles: Some(CADENCE),
        ..Budget::default()
    };
    let mut sys = fresh(w, secure);
    let mut snaps = Vec::new();
    let full = sys
        .run_budgeted_checkpointed(MAX_CYCLES, &budget, |c, b| snaps.push((c, b.to_vec())))
        .expect_err("fuel must run out")
        .into_partial();
    assert!(!snaps.is_empty(), "need a checkpoint before fuel ran out");

    let (_, bytes) = &snaps[snaps.len() / 2];
    let mut sys = fresh(w, secure);
    sys.restore_bytes(bytes).expect("restore");
    let resume_budget = Budget {
        fuel: None, // keep the restored per-core remaining fuel
        checkpoint_every_cycles: Some(CADENCE),
        ..Budget::default()
    };
    let resumed = sys
        .run_budgeted_checkpointed(MAX_CYCLES, &resume_budget, |_, _| {})
        .expect_err("fuel still runs out")
        .into_partial();
    assert_eq!(resumed, full);
}

#[test]
fn snapshots_reject_corruption_and_truncation() {
    let (_, w) = &workloads()[0];
    let secure = SecureConfig::nda();
    let (_, snaps) = run_full(w, secure);
    let bytes = &snaps[0].1;

    // Truncations at section-sized strides (every prefix would be slow
    // on a multi-KB snapshot; strides still cross every section).
    for cut in (0..bytes.len()).step_by(127) {
        let mut sys = fresh(w, secure);
        assert!(
            sys.restore_bytes(&bytes[..cut]).is_err(),
            "truncated snapshot of {cut} bytes must not restore"
        );
    }
    // Trailing garbage is rejected too.
    let mut extended = bytes.clone();
    extended.push(0);
    let mut sys = fresh(w, secure);
    assert!(sys.restore_bytes(&extended).is_err());
}

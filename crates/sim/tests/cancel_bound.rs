//! Cooperative-cancel latency bound: a raised cancel flag must stop the
//! run within one `CANCEL_CHECK_INTERVAL` of polling, even when every
//! core is stalled on pathologically slow memory. The cancel poll sits
//! on the cycle loop, not the commit path, so a core that commits
//! nothing for thousands of cycles cannot delay it.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use recon::ReconConfig;
use recon_cpu::CoreConfig;
use recon_mem::MemConfig;
use recon_secure::SecureConfig;
use recon_sim::error::CANCEL_CHECK_INTERVAL;
use recon_sim::{Budget, SimError, System};
use recon_workloads::gen::parallel::{generate, ParKind, ParallelParams};

#[test]
fn cancel_lands_within_one_poll_interval_despite_slow_memory() {
    let w = generate(ParallelParams {
        kind: ParKind::SharedChase,
        slots: 64,
        cond_lines: 4,
        passes: 2,
        seed: 1,
    });
    // Memory so slow that a core commits almost nothing between polls:
    // if cancellation were observed at commit, it would take ~memory
    // latency cycles past the flag; on the cycle loop it lands at the
    // first poll boundary regardless.
    let mut mem_cfg = MemConfig::scaled();
    mem_cfg.lat.mem = 1_000_000;
    mem_cfg.lat.remote_fwd = 1_000_000;
    let mut sys = System::new(
        &w,
        CoreConfig::tiny(),
        mem_cfg,
        SecureConfig::unsafe_baseline(),
        ReconConfig::default(),
    );
    // Flag raised before the run even starts: the worst case for
    // latency accounting (the flag is never "freshly" raised).
    let budget = Budget {
        cancel: Some(Arc::new(AtomicBool::new(true))),
        ..Budget::default()
    };
    match sys.run_budgeted(u64::MAX, &budget) {
        Err(SimError::Cancelled { partial }) => {
            assert!(
                partial.cycles <= CANCEL_CHECK_INTERVAL,
                "cancel took {} cycles, bound is {CANCEL_CHECK_INTERVAL}",
                partial.cycles
            );
            assert!(!partial.completed);
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn cancel_raised_mid_run_lands_at_the_next_boundary() {
    let w = generate(ParallelParams {
        kind: ParKind::SharedChase,
        slots: 64,
        cond_lines: 4,
        passes: 2,
        seed: 1,
    });
    let mut mem_cfg = MemConfig::scaled();
    mem_cfg.lat.mem = 1_000_000;
    let mut sys = System::new(
        &w,
        CoreConfig::tiny(),
        mem_cfg,
        SecureConfig::stt(),
        ReconConfig::default(),
    );
    let flag = Arc::new(AtomicBool::new(false));
    let budget = Budget {
        cancel: Some(Arc::clone(&flag)),
        ..Budget::default()
    };
    // Advance past the first poll boundary, then raise the flag.
    while sys.cycle() < CANCEL_CHECK_INTERVAL + 1 {
        sys.tick();
    }
    flag.store(true, std::sync::atomic::Ordering::Relaxed);
    let raised_at = sys.cycle();
    match sys.run_budgeted(u64::MAX, &budget) {
        Err(SimError::Cancelled { partial }) => {
            assert!(
                partial.cycles - raised_at <= CANCEL_CHECK_INTERVAL,
                "cancel observed {} cycles after the flag; bound is {CANCEL_CHECK_INTERVAL}",
                partial.cycles - raised_at
            );
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

//! Crash-safe job persistence (`ckpt::run_with_checkpoints`) and suite
//! resume (`run_batch_checkpointed`): completed jobs short-circuit via
//! result records, killed jobs resume from their newest checkpoint,
//! corrupt files are dropped and never trusted, and GC bounds disk use.

use std::fs;
use std::path::PathBuf;

use recon::ReconConfig;
use recon_cpu::CoreConfig;
use recon_mem::MemConfig;
use recon_secure::SecureConfig;
use recon_sim::ckpt::{self, CkptContext};
use recon_sim::runner::run_batch_checkpointed;
use recon_sim::{Budget, Experiment, System};
use recon_workloads::gen::parallel::{generate, ParKind, ParallelParams};
use recon_workloads::{Benchmark, Suite, Workload};

const CADENCE: u64 = 400;

fn tiny_workload(kind: ParKind) -> Workload {
    generate(ParallelParams {
        kind,
        slots: 64,
        cond_lines: 4,
        passes: 2,
        seed: 1,
    })
}

fn exp() -> Experiment {
    Experiment {
        core: CoreConfig::tiny(),
        mem: MemConfig::scaled(),
        recon: ReconConfig::default(),
        max_cycles: 10_000_000,
    }
}

/// A fresh per-test scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("recon-ckpt-suite-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn rck_files(dir: &PathBuf) -> usize {
    fs::read_dir(dir).map_or(0, |rd| {
        rd.filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "rck"))
            .count()
    })
}

#[test]
fn completed_job_is_cached_and_its_checkpoints_deleted() {
    let dir = scratch("cached");
    let e = exp();
    let w = tiny_workload(ParKind::SharedChase);
    let ctx = CkptContext::new(dir.clone(), CADENCE);
    let digest = ckpt::config_digest(&["cached-test"]);
    let meta = vec![("kind".to_string(), "test".to_string())];

    let (r1, i1) = ckpt::run_with_checkpoints(
        &e,
        &w,
        SecureConfig::stt_recon(),
        &Budget::default(),
        &ctx,
        &meta,
        digest,
    );
    let r1 = r1.expect("first run completes");
    assert!(!i1.result_cached);
    assert!(i1.resumed_from_cycle.is_none());
    assert!(i1.checkpoints_written >= 2, "{i1:?}");
    assert_eq!(rck_files(&dir), 0, "completion deletes checkpoints");
    assert_eq!(ckpt::read_result(&dir, digest).as_ref(), Some(&r1));

    let (r2, i2) = ckpt::run_with_checkpoints(
        &e,
        &w,
        SecureConfig::stt_recon(),
        &Budget::default(),
        &ctx,
        &meta,
        digest,
    );
    assert!(i2.result_cached, "second run must hit the result record");
    assert_eq!(i2.checkpoints_written, 0);
    assert_eq!(r2.expect("cached"), r1);
}

#[test]
fn killed_job_resumes_from_its_checkpoint_with_identical_results() {
    // Simulate a kill honestly: run the reference to completion while
    // collecting snapshots, leave only a mid-run `.rck` on disk (what a
    // killed process leaves: checkpoints, no result record), and let
    // `run_with_checkpoints` pick it up.
    let dir = scratch("resume");
    let e = exp();
    let w = tiny_workload(ParKind::ProducerConsumer);
    let secure = SecureConfig::nda_recon();
    let budget = Budget {
        checkpoint_every_cycles: Some(CADENCE),
        ..Budget::default()
    };
    let mut sys = System::new(&w, e.core, e.mem, secure, e.recon);
    let mut snaps = Vec::new();
    let full = sys
        .run_budgeted_checkpointed(e.max_cycles, &budget, |c, b| snaps.push((c, b.to_vec())))
        .expect("reference run completes");
    assert!(snaps.len() >= 2);

    let digest = ckpt::config_digest(&["resume-test"]);
    let (cycle, bytes) = &snaps[snaps.len() / 2];
    ckpt::write(
        &dir,
        &ckpt::Checkpoint {
            config_digest: digest,
            cycle: *cycle,
            meta: Vec::new(),
            state: bytes.clone(),
        },
    )
    .expect("plant checkpoint");

    let ctx = CkptContext::new(dir.clone(), CADENCE);
    let (r, info) =
        ckpt::run_with_checkpoints(&e, &w, secure, &Budget::default(), &ctx, &[], digest);
    assert_eq!(info.resumed_from_cycle, Some(*cycle));
    assert_eq!(
        r.expect("resumed run completes"),
        full,
        "resumed result must equal the uninterrupted run"
    );
    assert_eq!(rck_files(&dir), 0);
    assert!(ckpt::read_result(&dir, digest).is_some());
}

#[test]
fn corrupt_checkpoints_are_dropped_never_trusted() {
    let dir = scratch("corrupt");
    let digest = ckpt::config_digest(&["corrupt-test"]);
    // A torn/garbage file named like the newest checkpoint of this job.
    fs::write(dir.join(ckpt::file_name(digest, 999_999)), b"RCK1 garbage").expect("plant");

    let e = exp();
    let w = tiny_workload(ParKind::SharedChase);
    let ctx = CkptContext::new(dir.clone(), CADENCE);
    let (r, info) = ckpt::run_with_checkpoints(
        &e,
        &w,
        SecureConfig::stt(),
        &Budget::default(),
        &ctx,
        &[],
        digest,
    );
    assert!(info.dropped_corrupt >= 1, "{info:?}");
    assert!(info.resumed_from_cycle.is_none(), "garbage must not resume");
    let r = r.expect("runs from scratch");
    // Cross-check against a reference run at the same cadence (drains
    // are part of the timing): recovery never changes results.
    let mut sys = System::new(&w, e.core, e.mem, SecureConfig::stt(), e.recon);
    let budget = Budget {
        checkpoint_every_cycles: Some(CADENCE),
        ..Budget::default()
    };
    let reference = sys
        .run_budgeted_checkpointed(e.max_cycles, &budget, |_, _| {})
        .expect("reference completes");
    assert_eq!(r, reference);
}

#[test]
fn gc_bounds_disk_while_running() {
    let dir = scratch("gc");
    let e = exp();
    let w = tiny_workload(ParKind::SharedChase);
    let ctx = CkptContext {
        dir: dir.clone(),
        cadence: 200,
        keep: 1,
    };
    let digest = ckpt::config_digest(&["gc-test"]);
    let (r, info) = ckpt::run_with_checkpoints(
        &e,
        &w,
        SecureConfig::unsafe_baseline(),
        &Budget::default(),
        &ctx,
        &[],
        digest,
    );
    r.expect("completes");
    assert!(info.checkpoints_written >= 3, "{info:?}");
    assert!(
        info.gc_deleted >= info.checkpoints_written - 1,
        "keep=1 must GC all but the newest: {info:?}"
    );
}

#[test]
fn rerun_suite_batch_hits_the_result_cache() {
    let dir = scratch("batch");
    let e = exp();
    let benches = vec![
        Benchmark {
            name: "tiny-chase",
            suite: Suite::Parsec,
            workload: tiny_workload(ParKind::SharedChase),
        },
        Benchmark {
            name: "tiny-pc",
            suite: Suite::Parsec,
            workload: tiny_workload(ParKind::ProducerConsumer),
        },
    ];
    let configs = [SecureConfig::unsafe_baseline(), SecureConfig::stt_recon()];
    let ctx = CkptContext::new(dir.clone(), CADENCE);

    let first = run_batch_checkpointed(&e, &benches, &configs, 2, &ctx, "batch-test");
    assert_eq!(first.failed_count(), 0);
    let s1 = first.ckpt.expect("checkpointed batch reports stats");
    assert_eq!(s1.cached, 0);
    assert!(s1.written > 0);

    let second = run_batch_checkpointed(&e, &benches, &configs, 2, &ctx, "batch-test");
    let s2 = second.ckpt.expect("stats");
    assert_eq!(
        s2.cached,
        second.job_count(),
        "every job must come from the result cache on a re-run"
    );
    assert_eq!(s2.written, 0);
    for b in &benches {
        for &c in &configs {
            assert_eq!(
                first.get(b.name, c).expect("first has result"),
                second.get(b.name, c).expect("second has result"),
                "{}/{c}: cached result must match",
                b.name
            );
        }
    }
}

//! Table 2 — the simulated system configuration.
//!
//! Prints the core and memory parameters of the reproduction next to the
//! paper's gem5 configuration, flagging the capacity scaling applied to
//! the cache hierarchy (see DESIGN.md).

use recon_bench::banner;
use recon_cpu::CoreConfig;
use recon_mem::MemConfig;
use recon_sim::report::Table;

fn main() {
    banner("Table 2: system configuration", "gem5 config, §6.1 Table 2");
    let core = CoreConfig::paper();
    let scaled = MemConfig::scaled();
    let paper = MemConfig::paper();

    let mut t = Table::new(&["parameter", "paper", "this reproduction"]);
    let row = |t: &mut Table, k: &str, p: String, m: String| t.row(&[k.into(), p, m]);
    row(
        &mut t,
        "decode width",
        "8".into(),
        core.fetch_width.to_string(),
    );
    row(
        &mut t,
        "issue/commit width",
        "8".into(),
        core.issue_width.to_string(),
    );
    row(
        &mut t,
        "instruction queue",
        "160".into(),
        core.iq_entries.to_string(),
    );
    row(
        &mut t,
        "reorder buffer",
        "352".into(),
        core.rob_entries.to_string(),
    );
    row(
        &mut t,
        "load queue",
        "128".into(),
        core.lq_entries.to_string(),
    );
    row(
        &mut t,
        "store queue/buffer",
        "72".into(),
        core.sq_entries.to_string(),
    );
    row(
        &mut t,
        "L1 D cache",
        format!(
            "{} KiB, {} ways",
            paper.l1.capacity_bytes() / 1024,
            paper.l1.ways()
        ),
        format!(
            "{} KiB, {} ways (x1/32)",
            scaled.l1.capacity_bytes() / 1024,
            scaled.l1.ways()
        ),
    );
    row(
        &mut t,
        "L2 cache",
        format!(
            "{} KiB, {} ways",
            paper.l2.capacity_bytes() / 1024,
            paper.l2.ways()
        ),
        format!(
            "{} KiB, {} ways (x1/32)",
            scaled.l2.capacity_bytes() / 1024,
            scaled.l2.ways()
        ),
    );
    row(
        &mut t,
        "LLC",
        format!(
            "{} MiB, {} ways",
            paper.llc.capacity_bytes() / 1024 / 1024,
            paper.llc.ways()
        ),
        format!(
            "{} KiB, {} ways (x1/32; 4-core: {} MiB)",
            scaled.llc.capacity_bytes() / 1024,
            scaled.llc.ways(),
            MemConfig::scaled_multicore().llc.capacity_bytes() / 1024 / 1024,
        ),
    );
    row(
        &mut t,
        "L1 latency",
        "2 cycles".into(),
        format!("{} cycles", scaled.lat.l1_hit),
    );
    row(
        &mut t,
        "L2 latency",
        "6 cycles".into(),
        format!("{} cycles", scaled.lat.l2_hit),
    );
    row(
        &mut t,
        "LLC latency",
        "16 cycles".into(),
        format!("{} cycles", scaled.lat.llc_hit),
    );
    row(
        &mut t,
        "memory latency",
        "(DDR model)".into(),
        format!("{} cycles", scaled.lat.mem),
    );
    row(
        &mut t,
        "coherence",
        "3-level MESI".into(),
        "3-level MESI".into(),
    );
    row(
        &mut t,
        "directory",
        "in-cache (LLC)".into(),
        "in-cache (LLC)".into(),
    );
    row(&mut t, "line size", "64 B".into(), "64 B".into());
    print!("{}", t.render());
    println!();
    println!("Caches are capacity-scaled x1/32 with working sets scaled to match;");
    println!("latencies, widths, and queue sizes follow Table 2 exactly.");
}

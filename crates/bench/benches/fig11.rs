//! Figure 11 — normalized IPC of STT+ReCon with successively smaller
//! (tagged) load-pair tables: full, /2, /4, …, /64 entries.
//!
//! Paper: shrinking the LPT barely affects performance because load
//! pairs are close together in the pipeline; only mcf degrades
//! noticeably as conflicts grow.

use recon::{LptSize, ReconConfig};
use recon_bench::{banner, jobs_from_env, scale_from_env};
use recon_cpu::CoreConfig;
use recon_secure::SecureConfig;
use recon_sim::report::{norm, Table};
use recon_sim::{parallel_map, Experiment};
use recon_workloads::spec2017;

fn main() {
    banner(
        "Figure 11: LPT size sensitivity (STT+ReCon, SPEC2017)",
        "LPT can shrink to 1/64 of the register count with marginal loss (mcf first to suffer)",
    );
    let scale = scale_from_env();
    let num_pregs = CoreConfig::paper().num_pregs;
    let divisors: [usize; 5] = [1, 4, 16, 32, 64];
    let mut headers = vec!["benchmark".to_string(), "STT".to_string()];
    for d in divisors {
        headers.push(if d == 1 {
            "LPT full".into()
        } else {
            format!("LPT/{d}")
        });
    }
    headers.push("conflicts@/64".to_string());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    // One job per benchmark (7 runs: baseline, STT, 5 LPT sizes).
    let rows = parallel_map(jobs_from_env(), spec2017(scale), |b| {
        let base_exp = Experiment::default();
        let base = base_exp.run(&b.workload, SecureConfig::unsafe_baseline());
        let stt = base_exp.run(&b.workload, SecureConfig::stt());
        let mut cells = vec![b.name.to_string(), norm(stt.ipc() / base.ipc())];
        let mut conflicts_at_64 = 0;
        for d in divisors {
            let exp = Experiment {
                recon: ReconConfig {
                    lpt_size: LptSize::Entries((num_pregs / d).max(1)),
                    ..ReconConfig::default()
                },
                ..Experiment::default()
            };
            let r = exp.run(&b.workload, SecureConfig::stt_recon());
            if d == 64 {
                conflicts_at_64 = r.cores[0].lpt.tag_conflicts;
            }
            cells.push(norm(r.ipc() / base.ipc()));
        }
        cells.push(conflicts_at_64.to_string());
        cells
    });
    for cells in &rows {
        t.row(cells);
    }
    print!("{}", t.render());
    println!();
    println!("paper: all sizes within noise of each other except mcf, which");
    println!("degrades with every halving as tag conflicts lose reveal chances.");
    println!();
    println!("note: tag conflicts do occur at small sizes (rightmost column) but");
    println!("cost even less here than in the paper — pairs commit back-to-back");
    println!("and a reveal lost to a conflict is usually re-established on the");
    println!("next reuse of the pointer (see EXPERIMENTS.md).");
}

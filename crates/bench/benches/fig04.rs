//! Figure 4 — percentage breakdown of leakage out of the touched
//! address space: global DIFT vs direct load pairs.
//!
//! The paper (Clueless on SPEC traces): on average 53% of the address
//! space leaks under DIFT and 32% via direct load pairs — i.e. direct
//! pairs cover ~60% of all leakage, and for some benchmarks (gcc,
//! imagick, mcf, xalancbmk) essentially all of it.

use recon_bench::{banner, scale_from_env};
use recon_dift::analyze_program;
use recon_sim::mean;
use recon_sim::report::{pct, Table};
use recon_workloads::{spec2006, spec2017, Benchmark};

/// Per-suite rows; returns (dift fractions, pair fractions, and the
/// absolute (pair, dift) leak counts for the aggregate coverage).
fn suite_rows(t: &mut Table, benchmarks: &[Benchmark]) -> (Vec<f64>, Vec<f64>, u64, u64) {
    let (mut difts, mut pairs) = (Vec::new(), Vec::new());
    let (mut pair_total, mut dift_total) = (0u64, 0u64);
    for b in benchmarks {
        if b.workload.num_threads() != 1 {
            continue;
        }
        let r = analyze_program(&b.workload.program, 100_000_000)
            .expect("single-thread stand-ins terminate");
        difts.push(r.dift_fraction());
        pairs.push(r.pair_fraction());
        pair_total += r.pair_leaked as u64;
        dift_total += r.dift_leaked as u64;
        t.row(&[
            format!("{} ({})", b.name, b.suite),
            pct(r.dift_fraction()),
            pct(r.pair_fraction()),
            pct(r.coverage()),
            r.touched_words.to_string(),
        ]);
    }
    (difts, pairs, pair_total, dift_total)
}

fn main() {
    banner(
        "Figure 4: leakage breakdown (global DIFT vs direct load pairs)",
        "avg 53% of address space leaks (DIFT), 32% via load pairs (=60% coverage)",
    );
    let scale = scale_from_env();
    let mut t = Table::new(&["benchmark", "DIFT", "pairs", "coverage", "touched words"]);
    let (mut d17, mut p17, pt17, dt17) = suite_rows(&mut t, &spec2017(scale));
    let (d06, p06, pt06, dt06) = suite_rows(&mut t, &spec2006(scale));
    print!("{}", t.render());
    d17.extend(d06);
    p17.extend(p06);
    let aggregate = (pt17 + pt06) as f64 / (dt17 + dt06).max(1) as f64;
    println!();
    println!(
        "measured averages: DIFT {} of address space, pairs {}; aggregate coverage {}",
        pct(mean(&d17)),
        pct(mean(&p17)),
        pct(aggregate),
    );
    println!("paper:             DIFT 53%, pairs 32%, coverage ~60%");
}

//! §6.7 — implementation (storage) overhead accounting.
//!
//! Paper: a 180-register LPT is ~1.1 KiB (224 registers: ~1.37 KiB); a
//! halved, tagged LPT is 641/798 bytes; reveal masks add one byte per
//! 64-byte line, under 1.5% of total cache storage.

use recon::overhead::{lpt_bytes, lpt_tagged_bytes, mask_bytes_for_cache, mask_overhead_fraction};
use recon_bench::banner;
use recon_mem::MemConfig;
use recon_sim::report::{pct, Table};

fn main() {
    banner(
        "§6.7: storage-overhead accounting",
        "LPT ~1.1 KiB; masks < 1.5% of cache storage",
    );
    let mut t = Table::new(&["structure", "paper", "computed"]);
    t.row(&[
        "LPT, 180 pregs (Skylake)".into(),
        "~1.1 KiB".into(),
        format!("{} B", lpt_bytes(180)),
    ]);
    t.row(&[
        "LPT, 192 pregs (Zen 3)".into(),
        "—".into(),
        format!("{} B", lpt_bytes(192)),
    ]);
    t.row(&[
        "LPT, 224 pregs (Zen 4)".into(),
        "~1.37 KiB".into(),
        format!("{} B", lpt_bytes(224)),
    ]);
    t.row(&[
        "LPT/2 tagged, 90 entries".into(),
        "641 B".into(),
        format!("{} B", lpt_tagged_bytes(90)),
    ]);
    t.row(&[
        "LPT/2 tagged, 112 entries".into(),
        "798 B".into(),
        format!("{} B", lpt_tagged_bytes(112)),
    ]);
    let paper = MemConfig::paper();
    t.row(&[
        "masks, 64 KiB L1".into(),
        "1 B / line".into(),
        format!("{} B", mask_bytes_for_cache(paper.l1.capacity_bytes())),
    ]);
    t.row(&[
        "masks, 2 MiB L2".into(),
        "1 B / line".into(),
        format!("{} B", mask_bytes_for_cache(paper.l2.capacity_bytes())),
    ]);
    t.row(&[
        "masks, 16 MiB LLC dir".into(),
        "1 B / line".into(),
        format!("{} B", mask_bytes_for_cache(paper.llc.capacity_bytes())),
    ]);
    let total = paper.l1.capacity_bytes() + paper.l2.capacity_bytes() + paper.llc.capacity_bytes();
    t.row(&[
        "mask fraction of cache storage".into(),
        "< 1.5%".into(),
        pct(mask_overhead_fraction(total)),
    ]);
    print!("{}", t.render());
}

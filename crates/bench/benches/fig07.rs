//! Figure 7 — tainted loads of STT+ReCon normalized to STT (SPEC2017).
//!
//! Paper: ReCon commits 43.8% fewer tainted loads on average, because a
//! load reading a revealed word does not taint its destination. The
//! paper also notes the reduction is *not* proportional to the
//! performance gain (some tainted loads are more critical than others).

use recon_bench::{banner, run_pairs, scale_from_env};
use recon_secure::SecureConfig;
use recon_sim::mean;
use recon_sim::report::{norm, pct, Table};
use recon_sim::Experiment;
use recon_workloads::spec2017;

fn main() {
    banner(
        "Figure 7: tainted (guarded) committed loads, STT+ReCon / STT",
        "43.8% fewer tainted loads on average across SPEC2017",
    );
    let exp = Experiment::default();
    let rows = run_pairs(&exp, &spec2017(scale_from_env()), SecureConfig::stt());
    let mut t = Table::new(&["benchmark", "STT tainted", "STT+ReCon tainted", "ratio"]);
    let mut ratios = Vec::new();
    for r in &rows {
        let stt = r.scheme.guarded_loads();
        let rec = r.with_recon.guarded_loads();
        let ratio = if stt == 0 {
            0.0
        } else {
            rec as f64 / stt as f64
        };
        if stt > 0 {
            ratios.push(ratio);
        }
        t.row(&[r.name.into(), stt.to_string(), rec.to_string(), norm(ratio)]);
    }
    print!("{}", t.render());
    println!();
    println!(
        "mean reduction in tainted loads (benchmarks with tainted loads): {}",
        pct(1.0 - mean(&ratios)),
    );
    println!("paper: 43.8% average reduction");
}

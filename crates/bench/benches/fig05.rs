//! Figure 5 — normalized IPC of NDA and NDA+ReCon on the SPEC2017 and
//! SPEC2006 stand-ins.
//!
//! Paper: NDA degrades SPEC2017 by 13.2% (SPEC2006 by 10.4%); ReCon
//! reduces the overhead to 9.4% (7.2%), a 28.7% (31.5%) reduction.

use recon_bench::{banner, mean_overhead, run_pairs, scale_from_env};
use recon_secure::SecureConfig;
use recon_sim::report::{norm, pct, Table};
use recon_sim::{overhead_reduction, Experiment};
use recon_workloads::{spec2006, spec2017, Suite};

fn main() {
    banner(
        "Figure 5: normalized IPC, NDA and NDA+ReCon",
        "SPEC2017: NDA -13.2% -> NDA+ReCon -9.4% (28.7% less overhead); \
         SPEC2006: -10.4% -> -7.2% (31.5%)",
    );
    let scale = scale_from_env();
    let exp = Experiment::default();
    for (suite, benchmarks) in [
        (Suite::Spec2017, spec2017(scale)),
        (Suite::Spec2006, spec2006(scale)),
    ] {
        let rows = run_pairs(&exp, &benchmarks, SecureConfig::nda());
        let mut t = Table::new(&["benchmark", "NDA", "NDA+ReCon"]);
        for r in &rows {
            t.row(&[r.name.into(), norm(r.norm_scheme()), norm(r.norm_recon())]);
        }
        println!("\n--- {suite} ---");
        print!("{}", t.render());
        let (o, or) = (mean_overhead(&rows, false), mean_overhead(&rows, true));
        println!(
            "mean overhead: NDA {} -> NDA+ReCon {}  (overhead reduced by {})",
            pct(o),
            pct(or),
            pct(overhead_reduction(o, or)),
        );
    }
}

//! Table 1 — memory-dependence cases for the store-forwarding example
//! of Figure 2: which of PC3 (`ld [r4]`) and PC4 (`ld [r5]`) are
//! speculatively observable under STT vs ReCon.
//!
//! Paper:
//!
//! | case | PC3 | PC4 | STT observes | ReCon observes       |
//! |------|-----|-----|--------------|----------------------|
//! | 1    | MEM | MEM | ld[r4], —    | ld[r4], ld[r5]       |
//! | 2    | MEM | STF | ld[r4], —    | ld[r4], —            |
//! | 3    | STF | MEM | —, —         | —, —                 |
//! | 4    | STF | STF | —, —         | —, —                 |
//!
//! ReCon only changes case 1 — and only because `[r4]` has already been
//! revealed non-speculatively, so letting PC4 execute leaks nothing new.
//! Forwarded values are concealed (§4.4.2), so STF cases never lift.

use recon_bench::banner;
use recon_secure::SecureConfig;
use recon_sim::report::Table;
use recon_sim::scenarios::{run_table1, table1_scenario};

fn show(o: recon_sim::scenarios::Observability) -> String {
    match (o.pc3, o.pc4) {
        (true, true) => "ld[r4], ld[r5]".into(),
        (true, false) => "ld[r4], —".into(),
        (false, true) => "—, ld[r5]".into(),
        (false, false) => "—, —".into(),
    }
}

fn main() {
    banner(
        "Table 1: store-forwarding observability (Figure 2 gadget)",
        "ReCon differs from STT only in case 1 (both loads observable, already-public data)",
    );
    let rows: [(&str, &str, u64); 3] = [
        ("1", "MEM / MEM (no alias)", 0x300),
        ("2", "MEM / STF (store aliases [r5])", 0x200),
        ("3+4", "STF (store aliases [r4])", 0x100),
    ];
    let mut t = Table::new(&[
        "case",
        "prediction",
        "STT observes",
        "ReCon observes",
        "paper",
    ]);
    let paper = [
        "ld[r4], — / ld[r4], ld[r5]",
        "ld[r4], — / ld[r4], —",
        "—, — / —, —",
    ];
    for ((case, desc, target), paper) in rows.into_iter().zip(paper) {
        let s = table1_scenario(target);
        let stt = run_table1(&s, SecureConfig::stt());
        let recon = run_table1(&s, SecureConfig::stt_recon());
        t.row(&[
            case.into(),
            desc.into(),
            show(stt),
            show(recon),
            paper.into(),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("Matches Table 1: the only new observation ReCon permits is PC4 in");
    println!("case 1, where [r4]'s value is already public. Forwarded (STF) data");
    println!("is concealed in the SQ/SB and never lifts defenses.");
}

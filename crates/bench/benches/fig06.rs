//! Figure 6 — normalized IPC of STT and STT+ReCon on the SPEC2017 and
//! SPEC2006 stand-ins.
//!
//! Paper: STT degrades SPEC2017 by 8.9% (SPEC2006 by 8.1%); ReCon
//! reduces the overhead to 4.9% (5.0%), a 45.1% (39%) reduction.

use recon_bench::{banner, mean_overhead, run_pairs, scale_from_env};
use recon_secure::SecureConfig;
use recon_sim::report::{norm, pct, Table};
use recon_sim::{overhead_reduction, Experiment};
use recon_workloads::{spec2006, spec2017, Suite};

fn main() {
    banner(
        "Figure 6: normalized IPC, STT and STT+ReCon",
        "SPEC2017: STT -8.9% -> STT+ReCon -4.9% (45.1% less overhead); \
         SPEC2006: -8.1% -> -5.0% (39%)",
    );
    let scale = scale_from_env();
    let exp = Experiment::default();
    for (suite, benchmarks) in [
        (Suite::Spec2017, spec2017(scale)),
        (Suite::Spec2006, spec2006(scale)),
    ] {
        let rows = run_pairs(&exp, &benchmarks, SecureConfig::stt());
        let mut t = Table::new(&["benchmark", "STT", "STT+ReCon"]);
        for r in &rows {
            t.row(&[r.name.into(), norm(r.norm_scheme()), norm(r.norm_recon())]);
        }
        println!("\n--- {suite} ---");
        print!("{}", t.render());
        let (o, or) = (mean_overhead(&rows, false), mean_overhead(&rows, true));
        println!(
            "mean overhead: STT {} -> STT+ReCon {}  (overhead reduced by {})",
            pct(o),
            pct(or),
            pct(overhead_reduction(o, or)),
        );
    }
}

//! Ablation — memory latency sensitivity.
//!
//! Sweeps the memory latency and reports STT and STT+ReCon overheads on
//! a pointer-reuse gadget. The *relative* STT overhead is largest when
//! compute and memory are balanced (short latencies): the defense's
//! serialization then dominates the iteration time. As memory latency
//! grows, the unsafe baseline becomes memory-bound too and the relative
//! gap narrows — while STT+ReCon stays nearly flat across the sweep,
//! because the revealed loads keep the dependent misses overlapped at
//! every latency point.

use recon_bench::{banner, jobs_from_env};
use recon_mem::{LatencyConfig, MemConfig};
use recon_secure::SecureConfig;
use recon_sim::report::{norm, pct, Table};
use recon_sim::{overhead_from_norm_ipc, overhead_reduction, parallel_map, Experiment};
use recon_workloads::gen::gadget::{generate, GadgetParams};
use recon_workloads::Workload;

fn main() {
    banner(
        "Ablation: memory latency vs ReCon recovery",
        "longer speculation windows -> larger STT loss -> larger ReCon recovery",
    );
    let program = generate(GadgetParams {
        slots: 1024,
        cond_lines: 16384,
        passes: 4,
        depth: 2,
        cyclic: true,
        seed: 21,
        ..Default::default()
    });
    let w = Workload::single(program);
    let mut t = Table::new(&["memory latency", "STT", "STT+ReCon", "overhead reduction"]);
    // One job per latency point (3 runs each), rows in sweep order.
    let rows = parallel_map(jobs_from_env(), vec![40u32, 80, 116, 200, 300], |mem_lat| {
        let mem = MemConfig {
            lat: LatencyConfig {
                mem: mem_lat,
                ..LatencyConfig::default()
            },
            ..MemConfig::scaled()
        };
        let exp = Experiment {
            mem,
            ..Experiment::default()
        };
        let base = exp.run(&w, SecureConfig::unsafe_baseline());
        let stt = exp.run(&w, SecureConfig::stt());
        let sttr = exp.run(&w, SecureConfig::stt_recon());
        let n_stt = stt.ipc() / base.ipc();
        let n_rec = sttr.ipc() / base.ipc();
        vec![
            format!("{mem_lat} cycles"),
            norm(n_stt),
            norm(n_rec),
            pct(overhead_reduction(
                overhead_from_norm_ipc(n_stt),
                overhead_from_norm_ipc(n_rec),
            )),
        ]
    });
    for cells in &rows {
        t.row(cells);
    }
    print!("{}", t.render());
    println!();
    println!("STT+ReCon stays nearly flat across the sweep (the revealed loads");
    println!("keep dependent misses overlapped), while plain STT is hit hardest");
    println!("when compute and memory are balanced; once memory dominates, both");
    println!("configurations are equally memory-bound and the relative gap");
    println!("narrows. ReCon's relative recovery is therefore largest exactly");
    println!("where modern cores operate.");
}

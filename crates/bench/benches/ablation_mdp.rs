//! Ablation — memory-dependence handling (§4.5).
//!
//! §4.5.1: without memory-dependence speculation, loads wait for every
//! older store address and ReCon has no effect on that channel.
//! §4.5.2: with prediction (store sets), loads issue past unresolved
//! stores; mispredictions squash and train the predictor. This harness
//! compares the two on store-heavy workloads under each scheme.

use recon_bench::{banner, jobs_from_env};
use recon_cpu::{CoreConfig, MdpMode};
use recon_secure::SecureConfig;
use recon_sim::report::{norm, Table};
use recon_sim::{parallel_map, Experiment};
use recon_workloads::gen::gadget::{generate, GadgetParams};
use recon_workloads::Workload;

fn main() {
    banner(
        "Ablation: conservative LSQ vs store-set memory-dependence prediction",
        "§4.5: prediction recovers the load-past-store parallelism; violations train",
    );
    let mut t = Table::new(&[
        "stores / 16 iters",
        "scheme",
        "conservative",
        "store sets",
        "violations",
    ]);
    // One job per (store density, scheme) sweep point: 4 runs each.
    let mut points = Vec::new();
    for stores in [2u8, 4, 8] {
        for secure in [
            SecureConfig::unsafe_baseline(),
            SecureConfig::stt(),
            SecureConfig::stt_recon(),
        ] {
            points.push((stores, secure));
        }
    }
    let rows = parallel_map(jobs_from_env(), points, |(stores, secure)| {
        let program = generate(GadgetParams {
            slots: 512,
            cond_lines: 16384,
            passes: 6,
            stores_per_16: stores,
            seed: 7,
            ..Default::default()
        });
        let w = Workload::single(program);
        let mut cells = vec![stores.to_string(), secure.label()];
        let mut violations = 0;
        let mut ipcs = Vec::new();
        for mdp in [MdpMode::Conservative, MdpMode::Predictor] {
            let exp = Experiment {
                core: CoreConfig {
                    mdp,
                    ..CoreConfig::paper()
                },
                ..Experiment::default()
            };
            let base = exp.run(&w, SecureConfig::unsafe_baseline());
            let r = exp.run(&w, secure);
            ipcs.push(r.ipc() / base.ipc());
            if mdp == MdpMode::Predictor {
                violations = r.cores[0].memory_violations;
            }
        }
        cells.push(norm(ipcs[0]));
        cells.push(norm(ipcs[1]));
        cells.push(violations.to_string());
        cells
    });
    for cells in &rows {
        t.row(cells);
    }
    print!("{}", t.render());
    println!();
    println!("Store sets keep normalized IPC at least as high as the conservative");
    println!("LSQ (each normalized to its own baseline) while violations stay");
    println!("rare after the first training squashes.");
}

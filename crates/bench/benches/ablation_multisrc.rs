//! Ablation — multi-source load-pair detection (§5.1.1).
//!
//! The paper evaluates single-source detection only and leaves
//! multi-source operations (x86-style base+index loads, where *both*
//! operands can carry a direct load dependence) as future work. This
//! harness implements that extension and quantifies it: a workload whose
//! dereferences are mostly `ldx base+index*8` gains nothing from
//! single-source ReCon but recovers once the LPT checks every operand.

use recon::ReconConfig;
use recon_bench::{banner, jobs_from_env};
use recon_secure::SecureConfig;
use recon_sim::report::{norm, Table};
use recon_sim::{parallel_map, Experiment};
use recon_workloads::gen::gadget::{generate, GadgetParams};
use recon_workloads::Workload;

fn main() {
    banner(
        "Ablation: multi-source LPT lookups (the paper's §5.1.1 future work)",
        "single-source ReCon cannot capture base+index pairs; per-operand lookups can",
    );
    let mut t = Table::new(&[
        "multi-source iterations / 16",
        "STT",
        "+ReCon (single-src)",
        "+ReCon (multi-src)",
    ]);
    // One job per sweep point (4 runs each), rows in sweep order.
    let rows = parallel_map(jobs_from_env(), vec![0u8, 4, 8, 12], |multi| {
        let program = generate(GadgetParams {
            slots: 512,
            cond_lines: 16384,
            passes: 6,
            multi_per_16: multi,
            seed: 42,
            ..Default::default()
        });
        let w = Workload::single(program);
        let base_exp = Experiment::default();
        let base = base_exp.run(&w, SecureConfig::unsafe_baseline());
        let stt = base_exp.run(&w, SecureConfig::stt());
        let single = base_exp.run(&w, SecureConfig::stt_recon());
        let multi_exp = Experiment {
            recon: ReconConfig {
                multi_source: true,
                ..ReconConfig::default()
            },
            ..Experiment::default()
        };
        let multi_r = multi_exp.run(&w, SecureConfig::stt_recon());
        vec![
            multi.to_string(),
            norm(stt.ipc() / base.ipc()),
            norm(single.ipc() / base.ipc()),
            norm(multi_r.ipc() / base.ipc()),
        ]
    });
    for cells in &rows {
        t.row(cells);
    }
    print!("{}", t.render());
    println!();
    println!("With no multi-source iterations the two LPT modes coincide; as the");
    println!("share grows, only per-operand lookups keep recovering the overhead.");
}

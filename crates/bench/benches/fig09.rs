//! Figure 9 — correlation between the fraction of leakage captured by
//! direct load pairs (Clueless coverage) and the overhead reduction
//! ReCon achieves, for the SPEC2017 stand-ins with > 5% STT
//! degradation.
//!
//! Paper: the higher the load-pair share of total leakage, the more of
//! the STT overhead ReCon recovers; cactuBSSN and deepsjeng (low
//! coverage) gain little, xalancbmk (high coverage) gains the most.

use recon_bench::{banner, jobs_from_env, scale_from_env};
use recon_dift::analyze_program;
use recon_secure::SecureConfig;
use recon_sim::report::{norm, pct, Table};
use recon_sim::{overhead_from_norm_ipc, overhead_reduction, parallel_map, Experiment};
use recon_workloads::{find, Suite, FIG9_BENCHMARKS};

fn main() {
    banner(
        "Figure 9: pair-leakage coverage vs STT overhead reduction",
        "benchmarks sorted by overhead reduction; recovery tracks coverage",
    );
    let scale = scale_from_env();
    let exp = Experiment::default();
    let benches: Vec<_> = FIG9_BENCHMARKS
        .iter()
        .map(|name| find(Suite::Spec2017, name, scale).expect("fig9 benchmark exists"))
        .collect();
    let mut rows: Vec<(String, f64, f64, f64)> = parallel_map(jobs_from_env(), benches, |b| {
        let leak = analyze_program(&b.workload.program, 100_000_000).expect("terminates");
        let base = exp.run(&b.workload, SecureConfig::unsafe_baseline());
        let stt = exp.run(&b.workload, SecureConfig::stt());
        let sttr = exp.run(&b.workload, SecureConfig::stt_recon());
        let o = overhead_from_norm_ipc(stt.ipc() / base.ipc());
        let or = overhead_from_norm_ipc(sttr.ipc() / base.ipc());
        let reduction = overhead_reduction(o, or);
        (b.name.to_string(), leak.coverage(), reduction, o)
    });
    // Sorted by overhead reduction, as in the paper (left to right).
    rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    let mut t = Table::new(&[
        "benchmark",
        "pair/DIFT coverage",
        "overhead reduction",
        "STT overhead",
    ]);
    for (name, cover, reduction, o) in &rows {
        t.row(&[name.clone(), pct(*cover), pct(*reduction), pct(*o)]);
    }
    print!("{}", t.render());
    println!();
    // A crude rank correlation as the "shape" check.
    let n = rows.len() as f64;
    let mean_c = rows.iter().map(|r| r.1).sum::<f64>() / n;
    let mean_r = rows.iter().map(|r| r.2).sum::<f64>() / n;
    let cov: f64 = rows
        .iter()
        .map(|r| (r.1 - mean_c) * (r.2 - mean_r))
        .sum::<f64>()
        / n;
    let sc = (rows.iter().map(|r| (r.1 - mean_c).powi(2)).sum::<f64>() / n).sqrt();
    let sr = (rows.iter().map(|r| (r.2 - mean_r).powi(2)).sum::<f64>() / n).sqrt();
    let corr = if sc * sr == 0.0 { 0.0 } else { cov / (sc * sr) };
    println!(
        "Pearson correlation (coverage vs reduction): {}",
        norm(corr)
    );
    println!("paper: positive correlation; low-coverage benchmarks recover least");
}

//! Figure 10 — normalized IPC of STT+ReCon when reveal masks are kept
//! only in the L1, in L1+L2, or at every level including the directory.
//!
//! Paper: applying ReCon only to the L1 reduces STT's 8.9% overhead to
//! 7.3%; L1+L2 to 6.3%; all levels to 4.9%. Benchmarks with small hot
//! pointer sets (cactuBSSN, leela) recover at L1 alone; large-working-
//! set benchmarks (gcc, mcf, omnetpp, xalancbmk) need L2 and the LLC.

use recon::{ReconConfig, ReconLevels};
use recon_bench::{banner, jobs_from_env, scale_from_env};
use recon_secure::SecureConfig;
use recon_sim::report::{norm, pct, Table};
use recon_sim::{mean, parallel_map, Experiment};
use recon_workloads::spec2017;

fn main() {
    banner(
        "Figure 10: ReCon applied to different cache levels (STT, SPEC2017)",
        "STT 8.9% overhead -> 7.3% (L1), 6.3% (L1+L2), 4.9% (all levels)",
    );
    let scale = scale_from_env();
    let benchmarks = spec2017(scale);
    let base_exp = Experiment::default();
    // One job per (benchmark, level sweep): 5 runs each, farmed out to
    // the worker pool; rows come back in benchmark order.
    let rows = parallel_map(jobs_from_env(), benchmarks, |b| {
        let base = base_exp.run(&b.workload, SecureConfig::unsafe_baseline());
        let stt = base_exp.run(&b.workload, SecureConfig::stt());
        let mut norms = vec![stt.ipc() / base.ipc()];
        for levels in ReconLevels::ALL {
            let exp = Experiment {
                recon: ReconConfig {
                    levels,
                    ..ReconConfig::default()
                },
                ..Experiment::default()
            };
            let r = exp.run(&b.workload, SecureConfig::stt_recon());
            norms.push(r.ipc() / base.ipc());
        }
        (b.name, norms)
    });
    let mut t = Table::new(&[
        "benchmark",
        "STT",
        "+ReCon L1",
        "+ReCon L1+L2",
        "+ReCon all",
    ]);
    let mut sums = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for (name, norms) in &rows {
        let mut cells = vec![name.to_string()];
        for (i, n) in norms.iter().enumerate() {
            sums[i].push(1.0 - n.min(1.0));
            cells.push(norm(*n));
        }
        t.row(&cells);
    }
    print!("{}", t.render());
    println!();
    println!(
        "mean overhead: STT {} -> L1 {} -> L1+L2 {} -> all levels {}",
        pct(mean(&sums[0])),
        pct(mean(&sums[1])),
        pct(mean(&sums[2])),
        pct(mean(&sums[3])),
    );
    println!("paper: 8.9% -> 7.3% -> 6.3% -> 4.9%");
}

//! Criterion microbenchmarks of the reproduction's substrates: LPT
//! throughput, reveal-mask operations, cache-array and coherent-system
//! accesses, branch prediction, the DIFT analyzer, and end-to-end
//! simulated cycles per second.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use recon::{LoadPairTable, ReconConfig, RevealMask};
use recon_cpu::bpred::BranchPredictor;
use recon_mem::{CacheArray, CacheGeometry, MemConfig, MemorySystem, Mesi};
use recon_secure::SecureConfig;
use recon_sim::Experiment;
use recon_workloads::gen::gadget::{generate, GadgetParams};
use recon_workloads::Workload;

fn bench_lpt(c: &mut Criterion) {
    c.bench_function("lpt/commit_load_pair", |b| {
        let mut lpt = LoadPairTable::full(256);
        let mut preg = 0u32;
        b.iter(|| {
            preg = (preg + 1) % 255;
            lpt.commit_load(preg, None, 0x1000 + u64::from(preg) * 8, false);
            black_box(lpt.commit_load(preg + 1, Some(preg), 0x2000, false))
        });
    });
}

fn bench_mask(c: &mut Criterion) {
    c.bench_function("mask/reveal_conceal_merge", |b| {
        let mut m = RevealMask::all_concealed();
        let other = RevealMask::from_bits(0b1010_1010);
        b.iter(|| {
            m.reveal(3);
            m.merge_or(other);
            m.conceal(3);
            black_box(m.count_revealed())
        });
    });
}

fn bench_cache_array(c: &mut Criterion) {
    c.bench_function("cache/fill_touch", |b| {
        let mut arr = CacheArray::new(CacheGeometry::new(64 * 1024, 8));
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xF_FFFF;
            arr.fill(addr, Mesi::Shared, RevealMask::all_concealed());
            black_box(arr.touch(addr))
        });
    });
}

fn bench_memory_system(c: &mut Criterion) {
    c.bench_function("mem/read_two_cores_sharing", |b| {
        let mut mem = MemorySystem::new(2, MemConfig::scaled(), ReconConfig::default());
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xFFFF;
            mem.read(0, addr);
            black_box(mem.read(1, addr))
        });
    });
}

fn bench_bpred(c: &mut Criterion) {
    c.bench_function("bpred/predict_update", |b| {
        let mut bp = BranchPredictor::new(12);
        let mut pc = 0usize;
        b.iter(|| {
            pc = (pc + 7) & 0xFFF;
            let (taken, tok) = bp.predict(pc);
            bp.update(tok, !taken);
            black_box(taken)
        });
    });
}

fn bench_dift(c: &mut Criterion) {
    let program = generate(GadgetParams {
        slots: 64,
        cond_lines: 8,
        passes: 2,
        ..Default::default()
    });
    c.bench_function("dift/analyze_gadget_program", |b| {
        b.iter(|| black_box(recon_dift::analyze_program(&program, 1_000_000).unwrap()));
    });
}

fn bench_simulator(c: &mut Criterion) {
    let program = generate(GadgetParams {
        slots: 64,
        cond_lines: 16,
        passes: 1,
        ..Default::default()
    });
    let w = Workload::single(program);
    c.bench_function("sim/gadget_pass_stt_recon", |b| {
        let exp = Experiment::default();
        b.iter_batched(
            || w.clone(),
            |w| black_box(exp.run(&w, SecureConfig::stt_recon()).cycles),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_lpt,
    bench_mask,
    bench_cache_array,
    bench_memory_system,
    bench_bpred,
    bench_dift,
    bench_simulator
);
criterion_main!(benches);

//! Dependency-free microbenchmarks of the reproduction's substrates:
//! LPT throughput, reveal-mask operations, cache-array and
//! coherent-system accesses, branch prediction, the DIFT analyzer,
//! end-to-end simulated cycles, and the two hot-path comparisons that
//! motivated the memory rewrite — the paged functional store against
//! the word-granular SipHash map it replaced, and an FxHash-keyed
//! directory map against the SipHash default.
//!
//! Run with `cargo bench --bench components`. Each benchmark is timed
//! with `std::time::Instant` over a calibrated iteration count; results
//! print as ns/op. No external harness.

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

use recon::{LoadPairTable, ReconConfig, RevealMask};
use recon_cpu::bpred::BranchPredictor;
use recon_isa::hash::FxHashMap;
use recon_isa::rng::{Rng, SplitMix64};
use recon_isa::{DataMem, SparseMem};
use recon_mem::{CacheArray, CacheGeometry, MemConfig, MemorySystem, Mesi};
use recon_secure::SecureConfig;
use recon_sim::Experiment;
use recon_workloads::gen::gadget::{generate, GadgetParams};
use recon_workloads::Workload;

/// Times `f` over enough iterations for a stable reading and returns
/// nanoseconds per iteration. `f` must fold its work into `black_box`.
fn time_ns<F: FnMut()>(name: &str, mut f: F) -> f64 {
    // Warm up and calibrate: grow the batch until it runs >= 20 ms.
    let mut batch: u64 = 64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 20 || batch >= 1 << 28 {
            let ns = elapsed.as_nanos() as f64 / batch as f64;
            println!("{name:<44} {ns:>12.1} ns/op   ({batch} iters)");
            return ns;
        }
        batch *= 4;
    }
}

fn bench_lpt() {
    let mut lpt = LoadPairTable::full(256);
    let mut preg = 0u32;
    time_ns("lpt/commit_load_pair", || {
        preg = (preg + 1) % 255;
        lpt.commit_load(preg, None, 0x1000 + u64::from(preg) * 8, false);
        black_box(lpt.commit_load(preg + 1, Some(preg), 0x2000, false));
    });
}

fn bench_mask() {
    let mut m = RevealMask::all_concealed();
    let other = RevealMask::from_bits(0b1010_1010);
    time_ns("mask/reveal_conceal_merge", || {
        m.reveal(3);
        m.merge_or(other);
        m.conceal(3);
        black_box(m.count_revealed());
    });
}

fn bench_cache_array() {
    let mut arr = CacheArray::new(CacheGeometry::new(64 * 1024, 8));
    let mut addr = 0u64;
    time_ns("cache/fill_touch", || {
        addr = addr.wrapping_add(64) & 0xF_FFFF;
        arr.fill(addr, Mesi::Shared, RevealMask::all_concealed());
        black_box(arr.touch(addr));
    });
}

fn bench_memory_system() {
    let mut mem = MemorySystem::new(2, MemConfig::scaled(), ReconConfig::default());
    let mut addr = 0u64;
    time_ns("mem/read_two_cores_sharing", || {
        addr = addr.wrapping_add(64) & 0xFFFF;
        mem.read(0, addr);
        black_box(mem.read(1, addr));
    });
}

fn bench_bpred() {
    let mut bp = BranchPredictor::new(12);
    let mut pc = 0usize;
    time_ns("bpred/predict_update", || {
        pc = (pc + 7) & 0xFFF;
        let (taken, tok) = bp.predict(pc);
        bp.update(tok, !taken);
        black_box(taken);
    });
}

fn bench_dift() {
    let program = generate(GadgetParams {
        slots: 64,
        cond_lines: 8,
        passes: 2,
        ..Default::default()
    });
    time_ns("dift/analyze_gadget_program", || {
        black_box(recon_dift::analyze_program(&program, 1_000_000).unwrap());
    });
}

fn bench_simulator() {
    let program = generate(GadgetParams {
        slots: 64,
        cond_lines: 16,
        passes: 1,
        ..Default::default()
    });
    let w = Workload::single(program);
    let exp = Experiment::default();
    time_ns("sim/gadget_pass_stt_recon", || {
        black_box(exp.run(&w, SecureConfig::stt_recon()).cycles);
    });
}

/// The seed's functional memory: one SipHash lookup per word reference.
/// Kept here as the comparison baseline for the paged rewrite.
#[derive(Default)]
struct WordMapMem {
    words: HashMap<u64, u64>,
}

impl DataMem for WordMapMem {
    fn read(&mut self, addr: u64) -> u64 {
        self.words.get(&addr).copied().unwrap_or(0)
    }
    fn write(&mut self, addr: u64, value: u64) {
        self.words.insert(addr, value);
    }
}

/// Builds a random pointer-chase cycle over `words` 8-byte words inside
/// a `words * 8`-byte footprint, stored into `mem` via the trait.
fn build_chase<M: DataMem>(mem: &mut M, words: u64, seed: u64) -> u64 {
    let mut order: Vec<u64> = (0..words).collect();
    let mut rng = SplitMix64::new(seed);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below_usize(i + 1));
    }
    for w in 0..order.len() {
        let next = order[(w + 1) % order.len()];
        mem.write(order[w] * 8, next * 8);
    }
    order[0] * 8
}

fn chase_ns<M: DataMem>(name: &str, mem: &mut M, start: u64) -> f64 {
    let mut p = start;
    time_ns(name, || {
        for _ in 0..64 {
            p = mem.read(p);
        }
        black_box(p);
    }) / 64.0
}

/// The tentpole comparison: paged flat store vs the seed's word-granular
/// SipHash map, on a dependent pointer chase (worst case for both — no
/// spatial locality, every read waits on the previous one).
fn bench_paged_vs_word_map() -> (f64, f64) {
    const WORDS: u64 = 1 << 16; // 512 KiB footprint, 128 pages

    let mut old = WordMapMem::default();
    let start_old = build_chase(&mut old, WORDS, 7);
    let old_ns = chase_ns("memcmp/word_siphash_map_chase", &mut old, start_old);

    let mut paged = SparseMem::new();
    let start_new = build_chase(&mut paged, WORDS, 7);
    let new_ns = chase_ns("memcmp/paged_flat_store_chase", &mut paged, start_new);

    (old_ns, new_ns)
}

/// Directory-map comparison: FxHash vs SipHash on the line-granular
/// lookup pattern the MESI directory performs.
fn bench_dir_hash() -> (f64, f64) {
    const LINES: u64 = 1 << 14;

    let mut sip: HashMap<u64, u64> = HashMap::new();
    let mut fx: FxHashMap<u64, u64> = FxHashMap::default();
    for l in 0..LINES {
        sip.insert(l * 64, l);
        fx.insert(l * 64, l);
    }
    let mut addr = 0u64;
    let sip_ns = time_ns("dircmp/siphash_line_lookup", || {
        addr = addr.wrapping_add(64) & ((LINES - 1) * 64);
        black_box(sip.get(&addr));
    });
    let mut addr = 0u64;
    let fx_ns = time_ns("dircmp/fxhash_line_lookup", || {
        addr = addr.wrapping_add(64) & ((LINES - 1) * 64);
        black_box(fx.get(&addr));
    });
    (sip_ns, fx_ns)
}

fn main() {
    println!("component microbenches (Instant-based, no harness)\n");
    bench_lpt();
    bench_mask();
    bench_cache_array();
    bench_memory_system();
    bench_bpred();
    bench_dift();
    bench_simulator();

    println!();
    let (old_ns, new_ns) = bench_paged_vs_word_map();
    println!(
        "memcmp: paged flat store is {:.2}x the SipHash word map on a dependent chase",
        old_ns / new_ns
    );
    let (sip_ns, fx_ns) = bench_dir_hash();
    println!(
        "dircmp: FxHash directory lookups are {:.2}x SipHash",
        sip_ns / fx_ns
    );
}

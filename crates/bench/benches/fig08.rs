//! Figure 8 — normalized execution time of the 4-thread PARSEC
//! stand-ins under NDA, NDA+ReCon, STT, and STT+ReCon.
//!
//! Paper: NDA increases total execution time by 9.7% and STT by 4.4%;
//! ReCon reduces the overhead by 46.7% (NDA) and 78.6% (STT), to 5.2%
//! and 1.0% respectively. The multicore win comes from reveal masks
//! travelling between cores with the coherence protocol (§5.3).

use recon_bench::{banner, jobs_from_env, scale_from_env};
use recon_mem::MemConfig;
use recon_sim::report::{norm, pct, Table};
use recon_sim::{mean, overhead_reduction, Experiment};
use recon_workloads::parsec;

fn main() {
    banner(
        "Figure 8: PARSEC normalized execution time (4 cores)",
        "NDA +9.7% -> +5.2% with ReCon (46.7% less); STT +4.4% -> +1.0% (78.6% less)",
    );
    let exp = Experiment {
        mem: MemConfig::scaled_multicore(),
        ..Experiment::default()
    };
    let benchmarks = parsec(scale_from_env());
    let (matrices, _) = exp.run_matrices(&benchmarks, jobs_from_env());
    let mut t = Table::new(&["benchmark", "NDA", "NDA+ReCon", "STT", "STT+ReCon"]);
    let (mut on, mut onr, mut os, mut osr) = (vec![], vec![], vec![], vec![]);
    for m in &matrices {
        let nda = m.normalized_time(&m.nda);
        let ndar = m.normalized_time(&m.nda_recon);
        let stt = m.normalized_time(&m.stt);
        let sttr = m.normalized_time(&m.stt_recon);
        on.push(nda - 1.0);
        onr.push(ndar - 1.0);
        os.push(stt - 1.0);
        osr.push(sttr - 1.0);
        t.row(&[m.name.into(), norm(nda), norm(ndar), norm(stt), norm(sttr)]);
    }
    print!("{}", t.render());
    println!();
    println!(
        "mean time overhead: NDA {} -> {} with ReCon ({} less)",
        pct(mean(&on)),
        pct(mean(&onr)),
        pct(overhead_reduction(mean(&on), mean(&onr))),
    );
    println!(
        "                    STT {} -> {} with ReCon ({} less)",
        pct(mean(&os)),
        pct(mean(&osr)),
        pct(overhead_reduction(mean(&os), mean(&osr))),
    );
    println!("paper: NDA +9.7% -> +5.2% (46.7%); STT +4.4% -> +1.0% (78.6%)");
}

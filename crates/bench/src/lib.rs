//! # recon-bench
//!
//! Benchmark harnesses that regenerate **every table and figure** of the
//! ReCon paper's evaluation (§6). Each `cargo bench` target prints the
//! same rows/series the paper reports, using the synthetic stand-in
//! suites (see `DESIGN.md` for the substitution rationale and
//! `EXPERIMENTS.md` for paper-vs-measured results):
//!
//! | target     | reproduces |
//! |------------|------------|
//! | `table1`   | Table 1 — store-forwarding observability cases |
//! | `table2`   | Table 2 — system configuration |
//! | `fig04`    | Figure 4 — leakage breakdown (DIFT vs load pairs) |
//! | `fig05`    | Figure 5 — NDA / NDA+ReCon normalized IPC |
//! | `fig06`    | Figure 6 — STT / STT+ReCon normalized IPC |
//! | `fig07`    | Figure 7 — tainted loads, STT+ReCon vs STT |
//! | `fig08`    | Figure 8 — PARSEC normalized execution time |
//! | `fig09`    | Figure 9 — leakage coverage vs overhead reduction |
//! | `fig10`    | Figure 10 — ReCon at L1 / L1+L2 / all levels |
//! | `fig11`    | Figure 11 — LPT size sensitivity |
//! | `overhead` | §6.7 — storage-overhead accounting |
//! | `components` | dependency-free microbenches of the substrates |
//!
//! Set `RECON_SCALE=paper` for longer (×4) workloads, and `RECON_JOBS`
//! to pin the worker count the harnesses use (default: all cores).

#![warn(missing_docs)]

use recon_secure::SecureConfig;
use recon_sim::{BatchResults, Experiment, SystemResult};
use recon_workloads::{Benchmark, Scale};

/// Worker count from `RECON_JOBS` for the standalone bench harnesses:
/// like [`recon_sim::jobs_from_env`] but exiting with a clear message
/// on an invalid value instead of returning an error (the harnesses
/// have no other error channel).
#[must_use]
pub fn jobs_from_env() -> usize {
    match recon_sim::jobs_from_env() {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Reads the workload scale from `RECON_SCALE` (`quick` default,
/// `paper` for ×4 runs).
#[must_use]
pub fn scale_from_env() -> Scale {
    Scale::from_env()
}

/// Per-benchmark results for one scheme pair (base scheme and +ReCon).
#[derive(Clone, Debug)]
pub struct PairRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline (unsafe) result.
    pub base: SystemResult,
    /// The plain secure scheme.
    pub scheme: SystemResult,
    /// The secure scheme with ReCon.
    pub with_recon: SystemResult,
}

impl PairRow {
    /// Normalized IPC of the plain scheme (0 when the baseline ran no
    /// instructions, matching `SchemeMatrix::normalized_ipc`).
    #[must_use]
    pub fn norm_scheme(&self) -> f64 {
        norm_ipc(&self.scheme, &self.base)
    }

    /// Normalized IPC of the scheme with ReCon.
    #[must_use]
    pub fn norm_recon(&self) -> f64 {
        norm_ipc(&self.with_recon, &self.base)
    }
}

fn norm_ipc(result: &SystemResult, base: &SystemResult) -> f64 {
    let b = base.ipc();
    if b == 0.0 {
        0.0
    } else {
        result.ipc() / b
    }
}

/// Runs `benchmarks` under baseline, `scheme`, and `scheme`+ReCon on
/// [`jobs_from_env`] worker threads.
#[must_use]
pub fn run_pairs(exp: &Experiment, benchmarks: &[Benchmark], scheme: SecureConfig) -> Vec<PairRow> {
    run_pairs_jobs(exp, benchmarks, scheme, jobs_from_env()).0
}

/// Like [`run_pairs`] with an explicit worker count, also returning the
/// batch timing report. Row order matches `benchmarks` for any `jobs`.
#[must_use]
pub fn run_pairs_jobs(
    exp: &Experiment,
    benchmarks: &[Benchmark],
    scheme: SecureConfig,
    jobs: usize,
) -> (Vec<PairRow>, BatchResults) {
    let scheme = SecureConfig {
        recon: false,
        ..scheme
    };
    let recon = SecureConfig {
        recon: true,
        ..scheme
    };
    let configs = [SecureConfig::unsafe_baseline(), scheme, recon];
    let batch = recon_sim::run_batch(exp, benchmarks, &configs, jobs);
    let rows = benchmarks
        .iter()
        .map(|b| PairRow {
            name: b.name,
            base: batch
                .expect(b.name, SecureConfig::unsafe_baseline())
                .clone(),
            scheme: batch.expect(b.name, scheme).clone(),
            with_recon: batch.expect(b.name, recon).clone(),
        })
        .collect();
    (rows, batch)
}

/// Mean IPC overhead (1 − normalized IPC, clamped at 0) over rows.
#[must_use]
pub fn mean_overhead(rows: &[PairRow], recon: bool) -> f64 {
    let overheads: Vec<f64> = rows
        .iter()
        .map(|r| {
            let n = if recon {
                r.norm_recon()
            } else {
                r.norm_scheme()
            };
            (1.0 - n).max(0.0)
        })
        .collect();
    recon_sim::mean(&overheads)
}

/// Prints the standard banner for a figure harness.
pub fn banner(what: &str, paper_says: &str) {
    println!();
    println!("================================================================");
    println!("Reproducing {what}");
    println!("Paper reference: {paper_says}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_default_is_quick() {
        // (Does not set the variable; relies on the default branch.)
        assert!(matches!(scale_from_env(), Scale::Quick | Scale::Paper));
    }

    #[test]
    fn mean_overhead_empty_is_zero() {
        assert_eq!(mean_overhead(&[], false), 0.0);
    }
}

//! # recon-bench
//!
//! Benchmark harnesses that regenerate **every table and figure** of the
//! ReCon paper's evaluation (§6). Each `cargo bench` target prints the
//! same rows/series the paper reports, using the synthetic stand-in
//! suites (see `DESIGN.md` for the substitution rationale and
//! `EXPERIMENTS.md` for paper-vs-measured results):
//!
//! | target     | reproduces |
//! |------------|------------|
//! | `table1`   | Table 1 — store-forwarding observability cases |
//! | `table2`   | Table 2 — system configuration |
//! | `fig04`    | Figure 4 — leakage breakdown (DIFT vs load pairs) |
//! | `fig05`    | Figure 5 — NDA / NDA+ReCon normalized IPC |
//! | `fig06`    | Figure 6 — STT / STT+ReCon normalized IPC |
//! | `fig07`    | Figure 7 — tainted loads, STT+ReCon vs STT |
//! | `fig08`    | Figure 8 — PARSEC normalized execution time |
//! | `fig09`    | Figure 9 — leakage coverage vs overhead reduction |
//! | `fig10`    | Figure 10 — ReCon at L1 / L1+L2 / all levels |
//! | `fig11`    | Figure 11 — LPT size sensitivity |
//! | `overhead` | §6.7 — storage-overhead accounting |
//! | `components` | criterion microbenches of the substrates |
//!
//! Set `RECON_SCALE=paper` for longer (×4) workloads.

#![warn(missing_docs)]

use recon_secure::SecureConfig;
use recon_sim::{Experiment, SystemResult};
use recon_workloads::{Benchmark, Scale};

/// Reads the workload scale from `RECON_SCALE` (`quick` default,
/// `paper` for ×4 runs).
#[must_use]
pub fn scale_from_env() -> Scale {
    Scale::from_env()
}

/// Per-benchmark results for one scheme pair (base scheme and +ReCon).
#[derive(Clone, Debug)]
pub struct PairRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline (unsafe) result.
    pub base: SystemResult,
    /// The plain secure scheme.
    pub scheme: SystemResult,
    /// The secure scheme with ReCon.
    pub with_recon: SystemResult,
}

impl PairRow {
    /// Normalized IPC of the plain scheme.
    #[must_use]
    pub fn norm_scheme(&self) -> f64 {
        self.scheme.ipc() / self.base.ipc()
    }

    /// Normalized IPC of the scheme with ReCon.
    #[must_use]
    pub fn norm_recon(&self) -> f64 {
        self.with_recon.ipc() / self.base.ipc()
    }
}

/// Runs `benchmarks` under baseline, `scheme`, and `scheme`+ReCon.
#[must_use]
pub fn run_pairs(
    exp: &Experiment,
    benchmarks: &[Benchmark],
    scheme: SecureConfig,
) -> Vec<PairRow> {
    let recon = SecureConfig { recon: true, ..scheme };
    benchmarks
        .iter()
        .map(|b| PairRow {
            name: b.name,
            base: exp.run(&b.workload, SecureConfig::unsafe_baseline()),
            scheme: exp.run(&b.workload, scheme),
            with_recon: exp.run(&b.workload, recon),
        })
        .collect()
}

/// Mean IPC overhead (1 − normalized IPC, clamped at 0) over rows.
#[must_use]
pub fn mean_overhead(rows: &[PairRow], recon: bool) -> f64 {
    let overheads: Vec<f64> = rows
        .iter()
        .map(|r| {
            let n = if recon { r.norm_recon() } else { r.norm_scheme() };
            (1.0 - n).max(0.0)
        })
        .collect();
    recon_sim::mean(&overheads)
}

/// Prints the standard banner for a figure harness.
pub fn banner(what: &str, paper_says: &str) {
    println!();
    println!("================================================================");
    println!("Reproducing {what}");
    println!("Paper reference: {paper_says}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_default_is_quick() {
        // (Does not set the variable; relies on the default branch.)
        assert!(matches!(scale_from_env(), Scale::Quick | Scale::Paper));
    }

    #[test]
    fn mean_overhead_empty_is_zero() {
        assert_eq!(mean_overhead(&[], false), 0.0);
    }
}

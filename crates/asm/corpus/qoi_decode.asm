# qoi_decode.asm — a QOI-style stream decoder. Each input word packs a
# tag in bits [1:0] and an argument in bits [63:8]:
#
#   tag 0  RUN    emit the previous value `arg` times (1..7)
#   tag 1  DIFF   value += arg (wrapping); emit; remember in seen-table
#   tag 2  INDEX  value = seen[arg & 63]; emit
#   tag 3  LIT    value = arg; emit; remember in seen-table
#
# The seen-table is indexed by the top 6 bits of value·φ64 — the QOI
# trick of recalling recently seen pixels by hash. The digest covers
# every emitted value plus the output length.
#
# Corpus conventions (DESIGN.md §13): r26 pass count, r29-r31 reserved,
# digest at 0xfeed0, status at 0xfeed8.
#
# Memory map: stream length at 0x900, stream at 0x1000 (.words),
# seen-table at 0x4000 (64 words), output at 0x5000.

.alias sb r1
.alias tb r2
.alias ob r3
.alias s r4
.alias len r5
.alias w r6
.alias tag r7
.alias arg r8
.alias last r9
.alias o r10
.alias t1 r11
.alias t2 r12
.alias addr r13
.alias cnt r14
.alias pass r20
.alias h r24
.alias status r25
.alias passes r26
.alias expect r27
.alias outp r28

.data 0x900 128                     # stream length in words
.zero 0x4000 64                     # seen-table (re-zeroed each pass)

# Input stream: 128 words, seed 0x5ec0 (tags 0/1/2/3: 28/34/33/33).
.words 0x1000 0x8282b6217301 0x1102 0x3b4177959201 0xc02
.words 0x1020 0x1d045697057603 0x1c45dbebb201 0xd941152787203 0x9920b0518a9703
.words 0x1040 0xed04c8820edd03 0x400 0x600 0x402
.words 0x1060 0x2cc8937b7d6403 0x3202 0x2102 0xfaee74221401
.words 0x1080 0x300 0x400ba80e7601 0x54016d2cac01 0x4e1846e1997f03
.words 0x10a0 0xeb5d58c6e39603 0x7d7478cadbaa03 0xb98928e22901 0xd37d62d05e01
.words 0x10c0 0x902 0x200 0x8e1f1e187a01 0x2502
.words 0x10e0 0x3002 0x6ba7dffa0401 0x700 0x3e70495fef01
.words 0x1100 0x3402 0x1c6f74239d9b03 0x54c5bacb875c03 0x8a37f961aa3103
.words 0x1120 0xddfcd5c7ed1103 0x1f02 0x73a8e1d20801 0x6ec3fb61018a03
.words 0x1140 0x3f02 0xc4e72af60b01 0x5d8ceba01a4503 0xa017f31afc01
.words 0x1160 0x12fd52c19401 0x3b02 0xbdd8d3225901 0x200
.words 0x1180 0x3202 0x500 0x9b0bfd717c01 0x702
.words 0x11a0 0x2f02 0x1c02 0x302 0x600
.words 0x11c0 0x2c02 0x8fcb29301501 0xd497f5ba197003 0x402
.words 0x11e0 0x422a6529b57b03 0xcabcf113ad9903 0xe67a4678301 0x600
.words 0x1200 0x100 0xe02 0x22d5c3fe716c03 0x902
.words 0x1220 0x2502 0x1aa53db9d77803 0xd7bfb01d357903 0x634e90e16e01
.words 0x1240 0x717c8c3c0501 0x300 0x2d02 0x2902
.words 0x1260 0x963242c60901 0xe388582305d803 0xa3c22de26c01 0x2c02
.words 0x1280 0xbb4e17543801 0xdd26fd960b01 0x750f121ac73003 0x100
.words 0x12a0 0x1702 0x24a61c78a001 0x600 0xce725bf47101
.words 0x12c0 0x700 0x2102 0x400 0xc5ca775f6c01
.words 0x12e0 0x802 0x49adcb67c56403 0x2b6da2911e5e03 0x400
.words 0x1300 0x100 0x200 0xe8bce2d53301 0x3a4f365a1101
.words 0x1320 0xa82f33878601 0x1d02 0x2d02 0x1699894cfeee03
.words 0x1340 0x183b4ea4618d03 0x500 0xa63372c49e01 0x200
.words 0x1360 0x202 0x5ddcf1380b5403 0x1112ab6a476803 0x600
.words 0x1380 0x100 0x400 0x500 0x700
.words 0x13a0 0x700 0x9fc80927149703 0x3283fee9ebe103 0xf4c16b267101
.words 0x13c0 0x57a7d2d41a8103 0x400 0xfe82e61d8e01 0x4e68dc2a28ff03
.words 0x13e0 0xba3c978b1fad03 0x2302 0x500 0xd02

.entry main r26=1

main:
    li pass, 0
pass_loop:
    bgeu pass, passes, all_done
    li sb, 0x1000
    li tb, 0x4000
    li ob, 0x5000
    li t1, 0x900
    ld len, [t1]

    # ---- reset decoder state (pass invariance) ------------------------
    li addr, 0x4000
    li t1, 0x4200
clear_loop:
    bgeu addr, t1, clear_done
    st zero, [addr]
    addi addr, addr, 8
    j clear_loop
clear_done:
    li s, 0
    li o, 0
    li last, 0

    # ---- decode --------------------------------------------------------
decode_loop:
    bgeu s, len, decode_done
    shli t1, s, 3
    add addr, sb, t1
    ld w, [addr]
    andi tag, w, 3
    shri arg, w, 8
    li t1, 0
    beq tag, t1, op_run
    li t1, 1
    beq tag, t1, op_diff
    li t1, 2
    beq tag, t1, op_index
op_lit:
    mv last, arg
    j emit_and_hash
op_run:
    mv cnt, arg
run_loop:
    beq cnt, zero, next_word
    shli t1, o, 3
    add addr, ob, t1
    st last, [addr]
    addi o, o, 1
    subi cnt, cnt, 1
    j run_loop
op_diff:
    add last, last, arg
    j emit_and_hash
op_index:
    andi t1, arg, 63
    ldx last, [tb+t1*8]             # seen-table recall (indexed load)
    j emit_only
emit_and_hash:
    muli t1, last, 0x9e3779b97f4a7c15
    shri t1, t1, 58
    shli t1, t1, 3
    add addr, tb, t1
    st last, [addr]                 # seen[hash(last)] = last
emit_only:
    shli t1, o, 3
    add addr, ob, t1
    st last, [addr]
    addi o, o, 1
next_word:
    addi s, s, 1
    j decode_loop
decode_done:

    # ---- digest over out[0..o], then fold in the length ---------------
    li h, 0
    li t2, 0
digest_loop:
    bgeu t2, o, digest_done
    shli t1, t2, 3
    add addr, ob, t1
    ld t1, [addr]
    muli h, h, 31
    add h, h, t1
    addi t2, t2, 1
    j digest_loop
digest_done:
    muli h, h, 31
    add h, h, o
    addi pass, pass, 1
    j pass_loop
all_done:

;@gadget

    # ---- self-check epilogue ------------------------------------------
    li expect, 0x3dc62b694deefa2f
    li outp, 0xfeed0
    st h, [outp]
    li status, 0x600d
    beq h, expect, write_status
    li status, 0xbad
write_status:
    li outp, 0xfeed8
    st status, [outp]
    halt

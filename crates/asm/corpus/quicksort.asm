# quicksort.asm — iterative Lomuto quicksort over 256 pseudo-random
# 64-bit keys, with a sortedness check folded into the digest pass.
#
# Corpus conventions (DESIGN.md §13):
#   r26          pass count (seeded by .entry; each pass recomputes from scratch)
#   r29-r31      reserved for spliced gadget code — never touched here
#   0xfeed0      result digest
#   0xfeed8      status: 0x600d pass / 0xbad fail
#
# Memory map: keys A[0..256) at 0x1000, explicit (lo,hi) stack at 0x4000.

.alias base r1
.alias n r2
.alias sp r3
.alias lo r4
.alias hi r5
.alias i r6
.alias jj r7
.alias piv r8
.alias t1 r9
.alias t2 r10
.alias addr r11
.alias x r12
.alias t3 r13
.alias prev r14
.alias pass r20
.alias h r24
.alias status r25
.alias passes r26
.alias expect r27
.alias outp r28

.entry main r26=1

main:
    li pass, 0
pass_loop:
    bgeu pass, passes, all_done

    # ---- init: A[0..n) from a 64-bit LCG ------------------------------
    li base, 0x1000
    li n, 256
    li x, 0x243f6a8885a308d3
    li i, 0
init_loop:
    bgeu i, n, init_done
    muli x, x, 0x5851f42d4c957f2d
    addi x, x, 0x14057b7ef767814f
    shli t1, i, 3
    add addr, base, t1
    st x, [addr]
    addi i, i, 1
    j init_loop
init_done:

    # ---- iterative quicksort with an explicit (lo,hi) stack -----------
    li sp, 0x4000
    li lo, 0
    subi hi, n, 1
    st lo, [sp]
    st hi, [sp+8]
    addi sp, sp, 16
qs_loop:
    li t1, 0x4000
    bgeu t1, sp, qs_done            # stack empty?
    subi sp, sp, 16
    ld lo, [sp]
    ld hi, [sp+8]
    bgeu lo, hi, qs_loop            # ranges of 0 or 1 keys are sorted

    # Lomuto partition: pivot = A[hi]
    shli t1, hi, 3
    add addr, base, t1
    ld piv, [addr]
    mv i, lo
    mv jj, lo
part_loop:
    bgeu jj, hi, part_done
    shli t1, jj, 3
    add addr, base, t1
    ld t2, [addr]                   # A[jj]
    bgeu t2, piv, part_next
    shli t3, i, 3
    add t3, base, t3                # &A[i]
    ld t1, [t3]
    st t1, [addr]                   # swap A[i] <-> A[jj]
    st t2, [t3]
    addi i, i, 1
part_next:
    addi jj, jj, 1
    j part_loop
part_done:
    shli t3, i, 3
    add t3, base, t3                # &A[i]
    shli t1, hi, 3
    add t1, base, t1                # &A[hi]
    ld t2, [t3]
    ld jj, [t1]
    st jj, [t3]                      # swap A[i] <-> A[hi]
    st t2, [t1]

    bgeu lo, i, skip_left           # push (lo, i-1) if i > lo
    st lo, [sp]
    subi t1, i, 1
    st t1, [sp+8]
    addi sp, sp, 16
skip_left:
    addi t1, i, 1
    bgeu t1, hi, skip_right         # push (i+1, hi) if i+1 < hi
    st t1, [sp]
    st hi, [sp+8]
    addi sp, sp, 16
skip_right:
    j qs_loop
qs_done:

    # ---- digest + sortedness check ------------------------------------
    li h, 0
    li i, 0
    li prev, 0
digest_loop:
    bgeu i, n, digest_done
    shli t1, i, 3
    add addr, base, t1
    ld t2, [addr]
    muli h, h, 31
    add h, h, t2
    beq i, zero, keep
    bltu t2, prev, fail             # out of order -> not sorted
keep:
    mv prev, t2
    addi i, i, 1
    j digest_loop
digest_done:
    addi pass, pass, 1
    j pass_loop
all_done:

;@gadget

    # ---- self-check epilogue ------------------------------------------
    li expect, 0xee53dfb18473471a
    li outp, 0xfeed0
    st h, [outp]
    li status, 0x600d
    beq h, expect, write_status
fail:
    li status, 0xbad
write_status:
    li outp, 0xfeed8
    st status, [outp]
    halt

# matmul.asm — dense n×n matrix multiply (n = 12, read from .data),
# C = A·B over wrapping u64 arithmetic.
#
# Corpus conventions (DESIGN.md §13): r26 pass count, r29-r31 reserved,
# digest at 0xfeed0, status at 0xfeed8.
#
# Memory map: n at 0x900, A at 0x1000, B at 0x1600, C at 0x1c00.

.alias ab r1
.alias bb r2
.alias cb r3
.alias i r4
.alias jj r5
.alias k r6
.alias acc r7
.alias t1 r8
.alias t2 r9
.alias addr r10
.alias n r11
.alias nsq r12
.alias pass r20
.alias h r24
.alias status r25
.alias passes r26
.alias expect r27
.alias outp r28

.data 0x900 12                      # matrix dimension

.entry main r26=1

main:
    li pass, 0
pass_loop:
    bgeu pass, passes, all_done
    li t1, 0x900
    ld n, [t1]
    li ab, 0x1000
    li bb, 0x1600
    li cb, 0x1c00
    mul nsq, n, n

    # ---- init: A[e] = (e+1)·φ64, B[e] = (e+2)·κ64 ---------------------
    li i, 0
init_loop:
    bgeu i, nsq, init_done
    addi t1, i, 1
    muli t1, t1, 0x9e3779b97f4a7c15
    shli t2, i, 3
    add addr, ab, t2
    st t1, [addr]
    addi t1, i, 2
    muli t1, t1, 0xc2b2ae3d27d4eb4f
    add addr, bb, t2
    st t1, [addr]
    addi i, i, 1
    j init_loop
init_done:

    # ---- C[i][jj] = Σk A[i][k]·B[k][jj] ---------------------------------
    li i, 0
i_loop:
    bgeu i, n, mm_done
    li jj, 0
j_loop:
    bgeu jj, n, i_next
    li acc, 0
    li k, 0
k_loop:
    bgeu k, n, k_done
    mul t1, i, n
    add t1, t1, k
    shli t1, t1, 3
    add addr, ab, t1
    ld t2, [addr]                   # A[i][k]
    mul t1, k, n
    add t1, t1, jj
    shli t1, t1, 3
    add addr, bb, t1
    ld t1, [addr]                   # B[k][jj]
    mul t2, t2, t1
    add acc, acc, t2
    addi k, k, 1
    j k_loop
k_done:
    mul t1, i, n
    add t1, t1, jj
    shli t1, t1, 3
    add addr, cb, t1
    st acc, [addr]
    addi jj, jj, 1
    j j_loop
i_next:
    addi i, i, 1
    j i_loop
mm_done:

    # ---- digest over C -------------------------------------------------
    li h, 0
    li i, 0
digest_loop:
    bgeu i, nsq, digest_done
    shli t1, i, 3
    add addr, cb, t1
    ld t2, [addr]
    muli h, h, 31
    add h, h, t2
    addi i, i, 1
    j digest_loop
digest_done:
    addi pass, pass, 1
    j pass_loop
all_done:

;@gadget

    # ---- self-check epilogue ------------------------------------------
    li expect, 0xaa5c5adbb025f090
    li outp, 0xfeed0
    st h, [outp]
    li status, 0x600d
    beq h, expect, write_status
    li status, 0xbad
write_status:
    li outp, 0xfeed8
    st status, [outp]
    halt

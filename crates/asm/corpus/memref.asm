# memref.asm — pointer chase over a 512-node linked ring scattered
# through 32 KiB (64-byte node stride). Each chase step is a
# load→load address dependence, the exact shape ReCon's load-pair
# table detects; payload loads feed the digest.
#
# Corpus conventions (DESIGN.md §13): r26 pass count, r29-r31 reserved,
# digest at 0xfeed0, status at 0xfeed8.
#
# Memory map: node count at 0x900, chase steps at 0x908, pass counter
# at 0x910 (bumped with amoadd), nodes at 0x10000 (node = {next, payload}).

.alias base r1
.alias nmask r2
.alias jj r3
.alias pj r4
.alias pn r5
.alias addr r6
.alias t1 r7
.alias t2 r8
.alias cur r9
.alias nxt r10
.alias steps r11
.alias sidx r12
.alias n r13
.alias pass r20
.alias h r24
.alias status r25
.alias passes r26
.alias expect r27
.alias outp r28

.data 0x900 512                     # node count (power of two)
.data 0x908 2048                    # chase steps per pass
.data 0x910 0                       # completed-pass counter

.entry main r26=1

main:
    li pass, 0
pass_loop:
    bgeu pass, passes, all_done
    li t1, 0x900
    ld n, [t1]
    subi nmask, n, 1
    li base, 0x10000

    # ---- build the ring: logical node jj sits at slot (jj·341) & mask ---
    li jj, 0
build_loop:
    bgeu jj, n, build_done
    muli pj, jj, 341
    and pj, pj, nmask
    addi pn, jj, 1
    muli pn, pn, 341
    and pn, pn, nmask
    shli t1, pj, 6
    add addr, base, t1              # &node[p(jj)]
    shli t1, pn, 6
    add t1, base, t1                # &node[p(jj+1)]
    st t1, [addr]                   # next pointer
    muli t2, jj, 0x9e3779b97f4a7c15
    st t2, [addr+8]                 # payload
    addi jj, jj, 1
    j build_loop
build_done:

    # ---- chase ---------------------------------------------------------
    li t1, 0x908
    ld steps, [t1]
    mv cur, base                    # p(0) = 0
    li sidx, 0
    li h, 0
chase_loop:
    bgeu sidx, steps, chase_done
    ld nxt, [cur]                   # load feeding the next load's address
    ld t2, [cur+8]
    muli h, h, 31
    add h, h, t2
    mv cur, nxt
    addi sidx, sidx, 1
    j chase_loop
chase_done:
    li t1, 0x910
    li t2, 1
    amoadd t2, [t1], t2             # count completed passes in memory
    addi pass, pass, 1
    j pass_loop
all_done:

;@gadget

    # ---- self-check epilogue ------------------------------------------
    li expect, 0x245799f13dc85400
    li outp, 0xfeed0
    st h, [outp]
    li status, 0x600d
    beq h, expect, write_status
    li status, 0xbad
write_status:
    li outp, 0xfeed8
    st status, [outp]
    halt

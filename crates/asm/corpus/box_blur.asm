# box_blur.asm — 3×3 box blur (sum of 9 neighbors >> 3) over the
# interior of a 32×32 grid of pseudo-random values; the one-pixel
# border of the output stays zero (defined by .zero).
#
# Corpus conventions (DESIGN.md §13): r26 pass count, r29-r31 reserved,
# digest at 0xfeed0, status at 0xfeed8.
#
# Memory map: source grid at 0x1000, output grid at 0x3000.

.alias src r1
.alias dst r2
.alias row r3
.alias col r4
.alias w r5
.alias wm1 r6
.alias sum r7
.alias t1 r8
.alias t2 r9
.alias addr r10
.alias x r12
.alias pass r20
.alias h r24
.alias status r25
.alias passes r26
.alias expect r27
.alias outp r28

.zero 0x3000 1024                   # output grid (border stays zero)

.entry main r26=1

main:
    li pass, 0
pass_loop:
    bgeu pass, passes, all_done
    li src, 0x1000
    li dst, 0x3000
    li w, 32
    li wm1, 31
    mul t1, w, w

    # ---- init: src[e] from a 64-bit LCG -------------------------------
    li x, 0x9e3779b97f4a7c15
    li t2, 0
init_loop:
    bgeu t2, t1, init_done
    muli x, x, 0xd1342543de82ef95
    addi x, x, 0xf767814f
    shli addr, t2, 3
    add addr, addr, src
    st x, [addr]
    addi t2, t2, 1
    j init_loop
init_done:

    # ---- blur the interior: rows/cols 1..30 ---------------------------
    li row, 1
row_loop:
    bgeu row, wm1, blur_done
    li col, 1
col_loop:
    bgeu col, wm1, row_next
    mul t1, row, w
    add t1, t1, col
    shli t1, t1, 3
    add addr, src, t1               # &src[row][col]; row stride = 256 bytes
    ld sum, [addr-264]
    ld t2, [addr-256]
    add sum, sum, t2
    ld t2, [addr-248]
    add sum, sum, t2
    ld t2, [addr-8]
    add sum, sum, t2
    ld t2, [addr]
    add sum, sum, t2
    ld t2, [addr+8]
    add sum, sum, t2
    ld t2, [addr+248]
    add sum, sum, t2
    ld t2, [addr+256]
    add sum, sum, t2
    ld t2, [addr+264]
    add sum, sum, t2
    shri sum, sum, 3
    add addr, dst, t1               # &dst[row][col]
    st sum, [addr]
    addi col, col, 1
    j col_loop
row_next:
    addi row, row, 1
    j row_loop
blur_done:

    # ---- digest over the full output grid -----------------------------
    li h, 0
    li t2, 0
    mul t1, w, w
digest_loop:
    bgeu t2, t1, digest_done
    shli addr, t2, 3
    add addr, addr, dst
    ld sum, [addr]
    muli h, h, 31
    add h, h, sum
    addi t2, t2, 1
    j digest_loop
digest_done:
    addi pass, pass, 1
    j pass_loop
all_done:

;@gadget

    # ---- self-check epilogue ------------------------------------------
    li expect, 0x9401b33c8940341a
    li outp, 0xfeed0
    st h, [outp]
    li status, 0x600d
    beq h, expect, write_status
    li status, 0xbad
write_status:
    li outp, 0xfeed8
    st status, [outp]
    halt

//! Prints each corpus program's functional-run digest, status, and
//! dynamic instruction count — the tool used to bake (and audit) the
//! golden digests in `corpus.rs` and the `.asm` epilogues.
//!
//! ```text
//! cargo run -p recon-asm --example corpus_digests
//! ```

use recon_asm::corpus::{self, STATUS_PASS};

fn main() {
    println!(
        "{:<12} {:>8} {:>10} {:>18} {:>6}",
        "benchmark", "static", "dynamic", "digest", "check"
    );
    let mut all_ok = true;
    for e in &corpus::CORPUS {
        let p = e.assemble();
        let r = corpus::run_self_check(&p, None, 100_000_000).expect("corpus program must run");
        let ok = r.halted && r.status == STATUS_PASS && r.digest == e.golden_digest;
        all_ok &= ok;
        println!(
            "{:<12} {:>8} {:>10} {:>#18x} {:>6}",
            e.name,
            p.program.code.len(),
            r.steps,
            r.digest,
            if ok { "pass" } else { "FAIL" }
        );
    }
    if !all_ok {
        std::process::exit(1);
    }
}

//! The text assembler: recon assembly source → [`AsmProgram`].
//!
//! ## Grammar
//!
//! The language is line-oriented. Each line is one of: a label
//! definition (`name:`), a directive, an instruction, or blank. `#` and
//! `;` start comments that run to end of line. A label on a line of its
//! own binds to the next instruction emitted.
//!
//! Directives:
//!
//! | directive | meaning |
//! |---|---|
//! | `.entry <label> [rN=<val> ...]` | add a hardware-thread entry point with register seeds |
//! | `.alias <name> <reg>` | name a register (position-independent; `zero` is built in for `r0`) |
//! | `.data <addr> <val>` | define one initial-memory word |
//! | `.words <addr> <v0> <v1> ...` | define consecutive words starting at `addr` |
//! | `.zero <addr> <count>` | define `count` zero words starting at `addr` |
//!
//! Instructions use the same mnemonics the `Inst` `Display` impl prints
//! (`li`, `add`/`addi`, …, `ld r2, [r1+0x10]`, `ldx r3, [r1+r2*8]`,
//! `st`, `amoadd`, `beq`/`bne`/`bltu`/`bgeu`, `j`, `nop`, `halt`), so a
//! disassembly re-assembles. `mv dst, src` is accepted as sugar for
//! `addi dst, src, 0x0`. Memory operands must not contain spaces.
//! Numbers are decimal or `0x` hex; a leading `-` wraps (two's
//! complement) for immediates and is a signed offset in memory operands.
//!
//! All source errors are reported as [`AsmTextError`] with a 1-based
//! line and column; the assembler never panics on malformed input.

use std::collections::HashMap;
use std::fmt;

use recon_isa::asm::AsmError;
use recon_isa::reg::NUM_ARCH_REGS;
use recon_isa::{AluKind, ArchReg, Asm, BranchKind, Program, ProgramError};

/// A source-located assembly error. `line` and `col` are 1-based.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmTextError {
    /// 1-based source line of the error.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Human-readable description.
    pub msg: String,
}

impl AsmTextError {
    fn new(line: usize, col: usize, msg: impl Into<String>) -> Self {
        AsmTextError {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for AsmTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for AsmTextError {}

/// One hardware-thread entry point declared by `.entry`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EntrySpec {
    /// Instruction index the thread starts at.
    pub entry: usize,
    /// Initial register values applied before the first instruction.
    pub seeds: Vec<(ArchReg, u64)>,
}

/// An assembled program plus the front-end metadata the binary
/// [`Program`] cannot carry: entry specs and the label table.
#[derive(Clone, PartialEq, Debug)]
pub struct AsmProgram {
    /// The validated program. `program.entry` is the first entry spec.
    pub program: Program,
    /// Entry points in `.entry` declaration order (one per hardware
    /// thread); defaults to a single seedless entry at instruction 0.
    pub entries: Vec<EntrySpec>,
    /// `(name, instruction index)` pairs in definition order.
    pub labels: Vec<(String, usize)>,
}

impl AsmProgram {
    /// Structural equality on the parts that affect execution: code,
    /// image, and entry specs (label *names* are presentation only).
    #[must_use]
    pub fn same_binary(&self, other: &AsmProgram) -> bool {
        self.program == other.program && self.entries == other.entries
    }
}

/// Suggests the closest candidate to `input` within edit distance 2,
/// for "did you mean" diagnostics. Ties go to the earliest candidate.
#[must_use]
pub fn suggest<'a>(input: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    let mut best: Option<(usize, &str)> = None;
    for cand in candidates {
        let d = edit_distance(input, cand);
        if d <= 2 && best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, cand));
        }
    }
    best.map(|(_, c)| c)
}

/// Levenshtein distance over bytes (sources here are ASCII).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// All instruction mnemonics, for "unknown mnemonic" suggestions.
const MNEMONICS: &[&str] = &[
    "li", "mv", "add", "sub", "mul", "and", "or", "xor", "shl", "shr", "sltu", "addi", "subi",
    "muli", "andi", "ori", "xori", "shli", "shri", "sltui", "ld", "ldx", "st", "amoadd", "beq",
    "bne", "bltu", "bgeu", "j", "nop", "halt",
];

const DIRECTIVES: &[&str] = &[".entry", ".alias", ".data", ".words", ".zero"];

/// A source token with its 1-based column.
#[derive(Clone, Copy, Debug)]
struct Tok<'a> {
    s: &'a str,
    col: usize,
}

/// Splits a comment-stripped line on whitespace and commas.
fn tokenize(line: &str) -> Vec<Tok<'_>> {
    let mut toks = Vec::new();
    let mut start: Option<usize> = None;
    for (i, ch) in line.char_indices() {
        if ch.is_whitespace() || ch == ',' {
            if let Some(s) = start.take() {
                toks.push(Tok {
                    s: &line[s..i],
                    col: s + 1,
                });
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        toks.push(Tok {
            s: &line[s..],
            col: s + 1,
        });
    }
    toks
}

fn strip_comment(line: &str) -> &str {
    match line.find(['#', ';']) {
        Some(i) => &line[..i],
        None => line,
    }
}

/// A label use site, resolved in pass 2.
#[derive(Clone, Debug)]
struct LabelRef {
    name: String,
    line: usize,
    col: usize,
}

/// Pass-1 statement IR: everything is parsed and register-resolved, but
/// branch targets are still label names.
#[derive(Clone, Debug)]
enum Stmt {
    Bind(String),
    LoadImm {
        dst: ArchReg,
        imm: u64,
    },
    Alu {
        kind: AluKind,
        dst: ArchReg,
        a: ArchReg,
        b: ArchReg,
    },
    AluImm {
        kind: AluKind,
        dst: ArchReg,
        a: ArchReg,
        imm: u64,
    },
    Load {
        dst: ArchReg,
        base: ArchReg,
        offset: i64,
    },
    LoadIdx {
        dst: ArchReg,
        base: ArchReg,
        index: ArchReg,
    },
    Store {
        val: ArchReg,
        base: ArchReg,
        offset: i64,
    },
    AmoAdd {
        dst: ArchReg,
        base: ArchReg,
        offset: i64,
        add: ArchReg,
    },
    Branch {
        kind: BranchKind,
        a: ArchReg,
        b: ArchReg,
        target: LabelRef,
    },
    Jump {
        target: LabelRef,
    },
    Nop,
    Halt,
}

impl Stmt {
    fn is_inst(&self) -> bool {
        !matches!(self, Stmt::Bind(_))
    }
}

struct Parser<'a> {
    aliases: HashMap<&'a str, ArchReg>,
    stmts: Vec<Stmt>,
    /// name → instruction index
    label_defs: HashMap<String, usize>,
    label_order: Vec<(String, usize)>,
    image: Vec<(u64, u64)>,
    entries: Vec<(LabelRef, Vec<(ArchReg, u64)>)>,
    inst_count: usize,
}

type PResult<T> = Result<T, AsmTextError>;

impl<'a> Parser<'a> {
    fn new() -> Self {
        Parser {
            aliases: HashMap::new(),
            stmts: Vec::new(),
            label_defs: HashMap::new(),
            label_order: Vec::new(),
            image: Vec::new(),
            entries: Vec::new(),
            inst_count: 0,
        }
    }

    fn parse_reg(&self, line: usize, tok: Tok<'_>) -> PResult<ArchReg> {
        if let Some(&r) = self.aliases.get(tok.s) {
            return Ok(r);
        }
        if tok.s == "zero" {
            return Ok(ArchReg::ZERO);
        }
        if let Some(num) = tok.s.strip_prefix('r') {
            if num.chars().all(|c| c.is_ascii_digit()) && !num.is_empty() {
                if let Ok(i) = num.parse::<usize>() {
                    if let Some(r) = ArchReg::try_new(i) {
                        return Ok(r);
                    }
                }
                return Err(AsmTextError::new(
                    line,
                    tok.col,
                    format!(
                        "unknown register '{}' (valid registers are r0..r{})",
                        tok.s,
                        NUM_ARCH_REGS - 1
                    ),
                ));
            }
        }
        let mut msg = format!("unknown register or alias '{}'", tok.s);
        if let Some(hint) = suggest(tok.s, self.aliases.keys().copied()) {
            msg.push_str(&format!(" (did you mean '{hint}'?)"));
        }
        Err(AsmTextError::new(line, tok.col, msg))
    }

    fn parse_u64(&self, line: usize, tok: Tok<'_>) -> PResult<u64> {
        parse_u64_tok(line, tok)
    }

    fn expect_arity(line: usize, toks: &[Tok<'_>], n: usize, usage: &str) -> PResult<()> {
        if toks.len() - 1 != n {
            let col = toks
                .get(n.min(toks.len() - 1))
                .map_or(toks[0].col, |t| t.col);
            return Err(AsmTextError::new(
                line,
                col,
                format!(
                    "'{}' expects {} operand{} (usage: {usage})",
                    toks[0].s,
                    n,
                    if n == 1 { "" } else { "s" }
                ),
            ));
        }
        Ok(())
    }

    /// Parses `[base]`, `[base+off]`, or `[base-off]`.
    fn parse_mem(&self, line: usize, tok: Tok<'_>) -> PResult<(ArchReg, i64)> {
        let inner = mem_inner(line, tok)?;
        let split = inner.s[1..].find(['+', '-']).map(|i| i + 1);
        match split {
            None => Ok((self.parse_reg(line, inner)?, 0)),
            Some(i) => {
                let base = self.parse_reg(
                    line,
                    Tok {
                        s: &inner.s[..i],
                        col: inner.col,
                    },
                )?;
                let off_tok = Tok {
                    s: &inner.s[i..],
                    col: inner.col + i,
                };
                Ok((base, parse_i64_tok(line, off_tok)?))
            }
        }
    }

    /// Parses `[base+index*8]` for `ldx`.
    fn parse_mem_idx(&self, line: usize, tok: Tok<'_>) -> PResult<(ArchReg, ArchReg)> {
        let inner = mem_inner(line, tok)?;
        let bad = || {
            AsmTextError::new(
                line,
                tok.col,
                format!(
                    "malformed indexed operand '{}' (expected [base+index*8])",
                    tok.s
                ),
            )
        };
        let plus = inner.s.find('+').ok_or_else(bad)?;
        let rest = &inner.s[plus + 1..];
        let idx = rest.strip_suffix("*8").ok_or_else(bad)?;
        let base = self.parse_reg(
            line,
            Tok {
                s: &inner.s[..plus],
                col: inner.col,
            },
        )?;
        let index = self.parse_reg(
            line,
            Tok {
                s: idx,
                col: inner.col + plus + 1,
            },
        )?;
        Ok((base, index))
    }

    fn push_inst(&mut self, stmt: Stmt) {
        debug_assert!(stmt.is_inst());
        self.inst_count += 1;
        self.stmts.push(stmt);
    }

    fn parse_directive(&mut self, line: usize, toks: &[Tok<'a>]) -> PResult<()> {
        let head = toks[0];
        match head.s {
            ".alias" => Ok(()), // handled in the alias pre-pass
            ".entry" => {
                if toks.len() < 2 {
                    return Err(AsmTextError::new(
                        line,
                        head.col,
                        "'.entry' expects a label (usage: .entry <label> [rN=<val> ...])",
                    ));
                }
                let target = LabelRef {
                    name: toks[1].s.to_string(),
                    line,
                    col: toks[1].col,
                };
                let mut seeds = Vec::new();
                for t in &toks[2..] {
                    let Some(eq) = t.s.find('=') else {
                        return Err(AsmTextError::new(
                            line,
                            t.col,
                            format!("malformed register seed '{}' (expected rN=<val>)", t.s),
                        ));
                    };
                    let reg = self.parse_reg(
                        line,
                        Tok {
                            s: &t.s[..eq],
                            col: t.col,
                        },
                    )?;
                    let val = self.parse_u64(
                        line,
                        Tok {
                            s: &t.s[eq + 1..],
                            col: t.col + eq + 1,
                        },
                    )?;
                    seeds.push((reg, val));
                }
                self.entries.push((target, seeds));
                Ok(())
            }
            ".data" => {
                Self::expect_arity(line, toks, 2, ".data <addr> <val>")?;
                let addr = self.parse_aligned_addr(line, toks[1])?;
                let val = self.parse_u64(line, toks[2])?;
                self.image.push((addr, val));
                Ok(())
            }
            ".words" => {
                if toks.len() < 3 {
                    return Err(AsmTextError::new(
                        line,
                        head.col,
                        "'.words' expects an address and at least one value",
                    ));
                }
                let addr = self.parse_aligned_addr(line, toks[1])?;
                for (i, t) in toks[2..].iter().enumerate() {
                    let val = self.parse_u64(line, *t)?;
                    let Some(a) = addr.checked_add(8 * i as u64) else {
                        return Err(AsmTextError::new(
                            line,
                            t.col,
                            "'.words' run wraps past the end of the address space",
                        ));
                    };
                    self.image.push((a, val));
                }
                Ok(())
            }
            ".zero" => {
                Self::expect_arity(line, toks, 2, ".zero <addr> <count>")?;
                let addr = self.parse_aligned_addr(line, toks[1])?;
                let count = self.parse_u64(line, toks[2])?;
                if count > 1 << 24 {
                    return Err(AsmTextError::new(
                        line,
                        toks[2].col,
                        format!("'.zero' count {count} too large (max {})", 1u64 << 24),
                    ));
                }
                if addr.checked_add(8 * count).is_none() {
                    return Err(AsmTextError::new(
                        line,
                        toks[1].col,
                        "'.zero' run wraps past the end of the address space",
                    ));
                }
                for i in 0..count {
                    self.image.push((addr + 8 * i, 0));
                }
                Ok(())
            }
            other => {
                let mut msg = format!("unknown directive '{other}'");
                if let Some(hint) = suggest(other, DIRECTIVES.iter().copied()) {
                    msg.push_str(&format!(" (did you mean '{hint}'?)"));
                }
                Err(AsmTextError::new(line, head.col, msg))
            }
        }
    }

    fn parse_aligned_addr(&self, line: usize, tok: Tok<'_>) -> PResult<u64> {
        let addr = self.parse_u64(line, tok)?;
        if addr % 8 != 0 {
            return Err(AsmTextError::new(
                line,
                tok.col,
                format!("misaligned data address {addr:#x} (must be 8-byte aligned)"),
            ));
        }
        Ok(addr)
    }

    fn label_ref(line: usize, tok: Tok<'_>) -> LabelRef {
        LabelRef {
            name: tok.s.to_string(),
            line,
            col: tok.col,
        }
    }

    fn parse_inst(&mut self, line: usize, toks: &[Tok<'a>]) -> PResult<()> {
        let head = toks[0];
        let alu_rr = |m: &str| -> Option<AluKind> {
            Some(match m {
                "add" => AluKind::Add,
                "sub" => AluKind::Sub,
                "mul" => AluKind::Mul,
                "and" => AluKind::And,
                "or" => AluKind::Or,
                "xor" => AluKind::Xor,
                "shl" => AluKind::Shl,
                "shr" => AluKind::Shr,
                "sltu" => AluKind::Sltu,
                _ => return None,
            })
        };
        let branch = |m: &str| -> Option<BranchKind> {
            Some(match m {
                "beq" => BranchKind::Eq,
                "bne" => BranchKind::Ne,
                "bltu" => BranchKind::Ltu,
                "bgeu" => BranchKind::Geu,
                _ => return None,
            })
        };
        match head.s {
            "li" => {
                Self::expect_arity(line, toks, 2, "li <dst>, <imm>")?;
                let dst = self.parse_reg(line, toks[1])?;
                let imm = self.parse_u64(line, toks[2])?;
                self.push_inst(Stmt::LoadImm { dst, imm });
            }
            "mv" => {
                Self::expect_arity(line, toks, 2, "mv <dst>, <src>")?;
                let dst = self.parse_reg(line, toks[1])?;
                let a = self.parse_reg(line, toks[2])?;
                self.push_inst(Stmt::AluImm {
                    kind: AluKind::Add,
                    dst,
                    a,
                    imm: 0,
                });
            }
            m if alu_rr(m).is_some() => {
                Self::expect_arity(line, toks, 3, "<op> <dst>, <a>, <b>")?;
                let kind = alu_rr(m).unwrap();
                let dst = self.parse_reg(line, toks[1])?;
                let a = self.parse_reg(line, toks[2])?;
                let b = self.parse_reg(line, toks[3])?;
                self.push_inst(Stmt::Alu { kind, dst, a, b });
            }
            m if m.len() > 1 && m.ends_with('i') && alu_rr(&m[..m.len() - 1]).is_some() => {
                Self::expect_arity(line, toks, 3, "<op>i <dst>, <a>, <imm>")?;
                let kind = alu_rr(&m[..m.len() - 1]).unwrap();
                let dst = self.parse_reg(line, toks[1])?;
                let a = self.parse_reg(line, toks[2])?;
                let imm = self.parse_u64(line, toks[3])?;
                self.push_inst(Stmt::AluImm { kind, dst, a, imm });
            }
            "ld" => {
                Self::expect_arity(line, toks, 2, "ld <dst>, [base+off]")?;
                let dst = self.parse_reg(line, toks[1])?;
                let (base, offset) = self.parse_mem(line, toks[2])?;
                self.push_inst(Stmt::Load { dst, base, offset });
            }
            "ldx" => {
                Self::expect_arity(line, toks, 2, "ldx <dst>, [base+index*8]")?;
                let dst = self.parse_reg(line, toks[1])?;
                let (base, index) = self.parse_mem_idx(line, toks[2])?;
                self.push_inst(Stmt::LoadIdx { dst, base, index });
            }
            "st" => {
                Self::expect_arity(line, toks, 2, "st <val>, [base+off]")?;
                let val = self.parse_reg(line, toks[1])?;
                let (base, offset) = self.parse_mem(line, toks[2])?;
                self.push_inst(Stmt::Store { val, base, offset });
            }
            "amoadd" => {
                Self::expect_arity(line, toks, 3, "amoadd <dst>, [base+off], <add>")?;
                let dst = self.parse_reg(line, toks[1])?;
                let (base, offset) = self.parse_mem(line, toks[2])?;
                let add = self.parse_reg(line, toks[3])?;
                self.push_inst(Stmt::AmoAdd {
                    dst,
                    base,
                    offset,
                    add,
                });
            }
            m if branch(m).is_some() => {
                Self::expect_arity(line, toks, 3, "<br> <a>, <b>, <label>")?;
                let kind = branch(m).unwrap();
                let a = self.parse_reg(line, toks[1])?;
                let b = self.parse_reg(line, toks[2])?;
                let target = Self::label_ref(line, toks[3]);
                self.push_inst(Stmt::Branch { kind, a, b, target });
            }
            "j" => {
                Self::expect_arity(line, toks, 1, "j <label>")?;
                let target = Self::label_ref(line, toks[1]);
                self.push_inst(Stmt::Jump { target });
            }
            "nop" => {
                Self::expect_arity(line, toks, 0, "nop")?;
                self.push_inst(Stmt::Nop);
            }
            "halt" => {
                Self::expect_arity(line, toks, 0, "halt")?;
                self.push_inst(Stmt::Halt);
            }
            other => {
                let mut msg = format!("unknown mnemonic '{other}'");
                if let Some(hint) = suggest(other, MNEMONICS.iter().copied()) {
                    msg.push_str(&format!(" (did you mean '{hint}'?)"));
                }
                return Err(AsmTextError::new(line, head.col, msg));
            }
        }
        Ok(())
    }
}

fn mem_inner<'b>(line: usize, tok: Tok<'b>) -> PResult<Tok<'b>> {
    let inner = tok
        .s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| {
            AsmTextError::new(
                line,
                tok.col,
                format!(
                    "malformed memory operand '{}' (expected [base+off] with no spaces)",
                    tok.s
                ),
            )
        })?;
    if inner.is_empty() {
        return Err(AsmTextError::new(
            line,
            tok.col,
            "empty memory operand '[]'",
        ));
    }
    Ok(Tok {
        s: inner,
        col: tok.col + 1,
    })
}

fn parse_u64_tok(line: usize, tok: Tok<'_>) -> PResult<u64> {
    let (neg, digits) = match tok.s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok.s),
    };
    let parsed = match digits
        .strip_prefix("0x")
        .or_else(|| digits.strip_prefix("0X"))
    {
        Some(hex) if !hex.is_empty() && hex.chars().all(|c| c.is_ascii_hexdigit()) => {
            u64::from_str_radix(hex, 16)
        }
        _ if !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit()) => {
            digits.parse::<u64>()
        }
        _ => {
            return Err(AsmTextError::new(
                line,
                tok.col,
                format!("malformed number '{}'", tok.s),
            ))
        }
    };
    match parsed {
        Ok(v) => Ok(if neg { v.wrapping_neg() } else { v }),
        Err(_) => Err(AsmTextError::new(
            line,
            tok.col,
            format!("immediate '{}' overflows 64 bits", tok.s),
        )),
    }
}

fn parse_i64_tok(line: usize, tok: Tok<'_>) -> PResult<i64> {
    let (neg, digits) = match tok.s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => match tok.s.strip_prefix('+') {
            Some(rest) => (false, rest),
            None => (false, tok.s),
        },
    };
    let magnitude = parse_u64_tok(
        line,
        Tok {
            s: digits,
            col: tok.col + usize::from(digits.len() != tok.s.len()),
        },
    )?;
    let limit = if neg { 1u64 << 63 } else { i64::MAX as u64 };
    if magnitude > limit {
        return Err(AsmTextError::new(
            line,
            tok.col,
            format!("offset '{}' overflows a signed 64-bit offset", tok.s),
        ));
    }
    Ok(if neg {
        (magnitude as i64).wrapping_neg()
    } else {
        magnitude as i64
    })
}

/// Whether `name` is usable as a label or alias name.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

/// Assembles recon assembly text into an [`AsmProgram`].
///
/// # Errors
///
/// Returns a line/column-diagnosed [`AsmTextError`] for any malformed
/// source: unknown mnemonics/registers/labels (with near-miss
/// suggestions), misaligned data, overflowing immediates, duplicate
/// labels, or a structurally invalid result (e.g. no `halt`).
pub fn assemble(src: &str) -> Result<AsmProgram, AsmTextError> {
    let mut p = Parser::new();

    // Alias pre-pass: aliases are position-independent so register
    // operands anywhere in the file can use them.
    for (no, raw) in src.lines().enumerate() {
        let line = no + 1;
        let toks = tokenize(strip_comment(raw));
        if toks.first().map(|t| t.s) != Some(".alias") {
            continue;
        }
        Parser::expect_arity(line, &toks, 2, ".alias <name> <reg>")?;
        let name = toks[1];
        if !valid_name(name.s) {
            return Err(AsmTextError::new(
                line,
                name.col,
                format!("invalid alias name '{}'", name.s),
            ));
        }
        if name.s == "zero"
            || MNEMONICS.contains(&name.s)
            || (name.s.starts_with('r')
                && name.s[1..].chars().all(|c| c.is_ascii_digit())
                && name.s.len() > 1)
        {
            return Err(AsmTextError::new(
                line,
                name.col,
                format!("alias '{}' shadows a register or mnemonic", name.s),
            ));
        }
        let reg = p.parse_reg(line, toks[2])?;
        if p.aliases.insert(name.s, reg).is_some() {
            return Err(AsmTextError::new(
                line,
                name.col,
                format!("alias '{}' defined twice", name.s),
            ));
        }
    }

    // Pass 1: structural parse. Counts instructions so label
    // definitions resolve to instruction indices.
    let mut last_line = 1;
    for (no, raw) in src.lines().enumerate() {
        let line = no + 1;
        last_line = line;
        let text = strip_comment(raw);
        let mut toks = tokenize(text);
        if toks.is_empty() {
            continue;
        }
        // Label definition(s): leading `name:` tokens.
        while let Some(head) = toks.first().copied() {
            let Some(name) = head.s.strip_suffix(':') else {
                break;
            };
            if !valid_name(name) {
                return Err(AsmTextError::new(
                    line,
                    head.col,
                    format!("invalid label name '{name}'"),
                ));
            }
            if p.label_defs
                .insert(name.to_string(), p.inst_count)
                .is_some()
            {
                return Err(AsmTextError::new(
                    line,
                    head.col,
                    format!("label '{name}' defined twice"),
                ));
            }
            p.label_order.push((name.to_string(), p.inst_count));
            p.stmts.push(Stmt::Bind(name.to_string()));
            toks.remove(0);
        }
        if toks.is_empty() {
            continue;
        }
        if toks[0].s.starts_with('.') {
            p.parse_directive(line, &toks)?;
        } else {
            p.parse_inst(line, &toks)?;
        }
    }

    // Resolve label references now so diagnostics carry use-site
    // line/col (the DSL's UnboundLabel would lose the position).
    let resolve = |r: &LabelRef, p: &Parser<'_>| -> PResult<()> {
        if p.label_defs.contains_key(&r.name) {
            return Ok(());
        }
        let mut msg = format!("unknown label '{}'", r.name);
        if let Some(hint) = suggest(&r.name, p.label_defs.keys().map(String::as_str)) {
            msg.push_str(&format!(" (did you mean '{hint}'?)"));
        }
        Err(AsmTextError::new(r.line, r.col, msg))
    };
    for stmt in &p.stmts {
        match stmt {
            Stmt::Branch { target, .. } | Stmt::Jump { target } => resolve(target, &p)?,
            _ => {}
        }
    }
    for (target, _) in &p.entries {
        resolve(target, &p)?;
        if p.label_defs[&target.name] >= p.inst_count {
            return Err(AsmTextError::new(
                target.line,
                target.col,
                format!(
                    "entry label '{}' is bound past the last instruction",
                    target.name
                ),
            ));
        }
    }

    // A label bound after the last instruction that is branched to
    // would produce an out-of-range target; diagnose it at the use.
    for stmt in &p.stmts {
        let target = match stmt {
            Stmt::Branch { target, .. } | Stmt::Jump { target } => target,
            _ => continue,
        };
        if p.label_defs[&target.name] >= p.inst_count {
            return Err(AsmTextError::new(
                target.line,
                target.col,
                format!(
                    "label '{}' is bound past the last instruction and cannot be a branch target",
                    target.name
                ),
            ));
        }
    }

    // Pass 2: emit through the Asm DSL.
    let mut a = Asm::new();
    let mut dsl_labels = HashMap::new();
    for (name, _) in &p.label_order {
        dsl_labels.insert(name.clone(), a.named_label(name.clone()));
    }
    for (addr, val) in &p.image {
        a.data(*addr, *val);
    }
    for stmt in &p.stmts {
        match stmt {
            Stmt::Bind(name) => {
                a.bind(dsl_labels[name]);
            }
            Stmt::LoadImm { dst, imm } => {
                a.li(*dst, *imm);
            }
            Stmt::Alu {
                kind,
                dst,
                a: ra,
                b,
            } => {
                a.alu(*kind, *dst, *ra, *b);
            }
            Stmt::AluImm {
                kind,
                dst,
                a: ra,
                imm,
            } => {
                a.alui(*kind, *dst, *ra, *imm);
            }
            Stmt::Load { dst, base, offset } => {
                a.load(*dst, *base, *offset);
            }
            Stmt::LoadIdx { dst, base, index } => {
                a.loadidx(*dst, *base, *index);
            }
            Stmt::Store { val, base, offset } => {
                a.store(*val, *base, *offset);
            }
            Stmt::AmoAdd {
                dst,
                base,
                offset,
                add,
            } => {
                a.amoadd(*dst, *base, *offset, *add);
            }
            Stmt::Branch {
                kind,
                a: ra,
                b,
                target,
            } => {
                let label = dsl_labels[&target.name];
                match kind {
                    BranchKind::Eq => a.beq(*ra, *b, label),
                    BranchKind::Ne => a.bne(*ra, *b, label),
                    BranchKind::Ltu => a.bltu(*ra, *b, label),
                    BranchKind::Geu => a.bgeu(*ra, *b, label),
                };
            }
            Stmt::Jump { target } => {
                a.jump(dsl_labels[&target.name]);
            }
            Stmt::Nop => {
                a.nop();
            }
            Stmt::Halt => {
                a.halt();
            }
        }
    }

    let mut program = a.assemble().map_err(|e| match e {
        AsmError::Invalid(ProgramError::MissingHalt) => {
            AsmTextError::new(last_line, 1, "program has no halt instruction")
        }
        // Unbound labels and out-of-range targets are diagnosed above
        // with use-site positions; anything else is a program-level
        // structural error without a single source position.
        other => AsmTextError::new(last_line, 1, format!("{other}")),
    })?;

    // Entry specs: default to a single seedless entry at instruction 0.
    let entries: Vec<EntrySpec> = if p.entries.is_empty() {
        vec![EntrySpec {
            entry: 0,
            seeds: Vec::new(),
        }]
    } else {
        p.entries
            .iter()
            .map(|(target, seeds)| EntrySpec {
                entry: p.label_defs[&target.name],
                seeds: seeds.clone(),
            })
            .collect()
    };
    program.entry = entries[0].entry;

    Ok(AsmProgram {
        program,
        entries,
        labels: p.label_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::Inst;

    #[test]
    fn assembles_a_minimal_program() {
        let p = assemble("main:\n    li r1, 42\n    halt\n").unwrap();
        assert_eq!(p.program.code.len(), 2);
        assert_eq!(
            p.program.code[0],
            Inst::LoadImm {
                dst: ArchReg::new(1),
                imm: 42
            }
        );
        assert_eq!(
            p.entries,
            vec![EntrySpec {
                entry: 0,
                seeds: vec![]
            }]
        );
        assert_eq!(p.labels, vec![("main".to_string(), 0)]);
    }

    #[test]
    fn resolves_forward_and_backward_labels() {
        let src = "
top:
    subi r1, r1, 1
    bne r1, zero, top
    beq r0, r0, end
    nop
end:
    halt
";
        let p = assemble(src).unwrap();
        assert_eq!(
            p.program.code[1],
            Inst::Branch {
                kind: BranchKind::Ne,
                a: ArchReg::new(1),
                b: ArchReg::ZERO,
                target: 0
            }
        );
        assert_eq!(
            p.program.code[2],
            Inst::Branch {
                kind: BranchKind::Eq,
                a: ArchReg::ZERO,
                b: ArchReg::ZERO,
                target: 4
            }
        );
    }

    #[test]
    fn aliases_are_position_independent() {
        let src = "
    li acc, 7      # used before .alias appears
.alias acc r9
    halt
";
        let p = assemble(src).unwrap();
        assert_eq!(
            p.program.code[0],
            Inst::LoadImm {
                dst: ArchReg::new(9),
                imm: 7
            }
        );
    }

    #[test]
    fn data_directives_populate_the_image() {
        let src = "
.data 0x100 0x2a
.words 0x200 1 2 3
.zero 0x300 2
    halt
";
        let p = assemble(src).unwrap();
        let img = &p.program.image;
        assert_eq!(img.get(0x100), Some(0x2a));
        assert_eq!(img.get(0x200), Some(1));
        assert_eq!(img.get(0x210), Some(3));
        assert_eq!(img.get(0x300), Some(0));
        assert_eq!(img.get(0x308), Some(0));
        assert_eq!(img.len(), 6);
    }

    #[test]
    fn entry_seeds_parse() {
        let src = "
.entry main r26=4 r5=0x10
    nop
main:
    halt
";
        let p = assemble(src).unwrap();
        assert_eq!(p.program.entry, 1);
        assert_eq!(
            p.entries,
            vec![EntrySpec {
                entry: 1,
                seeds: vec![(ArchReg::new(26), 4), (ArchReg::new(5), 0x10)]
            }]
        );
    }

    #[test]
    fn memory_operands_parse_all_forms() {
        let src = "
    ld r1, [r2]
    ld r1, [r2+0x10]
    st r1, [r2-8]
    ldx r3, [r1+r2*8]
    amoadd r4, [r5+16], r6
    halt
";
        let p = assemble(src).unwrap();
        assert_eq!(
            p.program.code[0],
            Inst::Load {
                dst: ArchReg::new(1),
                base: ArchReg::new(2),
                offset: 0
            }
        );
        assert_eq!(
            p.program.code[2],
            Inst::Store {
                val: ArchReg::new(1),
                base: ArchReg::new(2),
                offset: -8
            }
        );
        assert_eq!(
            p.program.code[3],
            Inst::LoadIdx {
                dst: ArchReg::new(3),
                base: ArchReg::new(1),
                index: ArchReg::new(2)
            }
        );
    }

    #[test]
    fn negative_immediates_wrap() {
        let p = assemble("    li r1, -1\n    halt\n").unwrap();
        assert_eq!(
            p.program.code[0],
            Inst::LoadImm {
                dst: ArchReg::new(1),
                imm: u64::MAX
            }
        );
    }

    #[test]
    fn unknown_label_reports_use_site_and_suggestion() {
        let err = assemble("    j epilog\nepilogue:\n    halt\n").unwrap_err();
        assert_eq!((err.line, err.col), (1, 7));
        assert!(err.msg.contains("unknown label 'epilog'"), "{}", err.msg);
        assert!(err.msg.contains("did you mean 'epilogue'"), "{}", err.msg);
    }

    #[test]
    fn unknown_mnemonic_suggests() {
        let err = assemble("    lii r1, 4\n    halt\n").unwrap_err();
        assert!(err.msg.contains("unknown mnemonic 'lii'"));
        assert!(err.msg.contains("did you mean 'li'"), "{}", err.msg);
    }

    #[test]
    fn suggest_respects_distance_cap() {
        assert_eq!(
            suggest("spec2107", ["spec2017", "parsec"]),
            Some("spec2017")
        );
        assert_eq!(suggest("zzzzzz", ["spec2017", "parsec"]), None);
    }
}

//! The embedded benchmark corpus: five real programs with
//! self-checking epilogues.
//!
//! ## Corpus conventions
//!
//! Every corpus program follows the same contract:
//!
//! * **Pass loop.** The whole computation (including input
//!   re-initialization) runs `r26` times; `r26` is seeded by the
//!   program's `.entry` line and overridden by the suite runner to
//!   scale work (quick vs paper scale). Because every pass recomputes
//!   from scratch, the result digest is pass-count invariant.
//! * **Self-check epilogue.** After the last pass the program writes
//!   its result digest to [`DIGEST_ADDR`] and then
//!   [`STATUS_PASS`]/[`STATUS_FAIL`] to [`STATUS_ADDR`] depending on
//!   whether the digest matches the expected value baked into the
//!   source (and any structural checks, e.g. quicksort verifies
//!   sortedness). A run whose status word is not [`STATUS_PASS`]
//!   computed the wrong answer — under *any* scheme.
//! * **Reserved registers.** `r29`–`r31` are never touched by corpus
//!   programs; spliced verification gadgets use them as scratch.
//! * **Gadget marker.** The comment line [`GADGET_MARKER`] marks where
//!   `recon verify --embedded` splices a leakage gadget: after the
//!   computation (so the gadget sits in a realistically warmed-up
//!   machine) and before the status write.
//! * **Address budget.** All corpus data lives below `0x10_0000`, so
//!   it never collides with the verify gadget library's probe/secret
//!   arrays (at `0x10_0000`+) or the digest/status words.

use recon_isa::exec::{step, ArchState, ExecError};
use recon_isa::{ArchReg, SparseMem};

use crate::text::{assemble, AsmProgram};

/// Address of the 64-bit result digest every corpus program writes.
pub const DIGEST_ADDR: u64 = 0xFEED0;
/// Address of the pass/fail status word.
pub const STATUS_ADDR: u64 = 0xFEED8;
/// Status value meaning the self-check passed.
pub const STATUS_PASS: u64 = 0x600D;
/// Status value meaning the self-check failed.
pub const STATUS_FAIL: u64 = 0xBAD;
/// Register seeded with the pass count (re-runs of the computation).
pub const PASS_REG: ArchReg = recon_isa::reg::names::R26;
/// Comment line marking the gadget splice point in corpus sources.
pub const GADGET_MARKER: &str = ";@gadget";

/// One embedded corpus program.
#[derive(Clone, Copy, Debug)]
pub struct CorpusEntry {
    /// Benchmark name (also the workload name in the `corpus` suite).
    pub name: &'static str,
    /// Full assembly source.
    pub source: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The digest the self-check expects (also baked into the source).
    pub golden_digest: u64,
}

impl CorpusEntry {
    /// Assembles the embedded source.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source does not assemble — that is a bug
    /// in the corpus itself, caught by this crate's tests.
    #[must_use]
    pub fn assemble(&self) -> AsmProgram {
        match assemble(self.source) {
            Ok(p) => p,
            Err(e) => panic!("embedded corpus program '{}' is invalid: {e}", self.name),
        }
    }
}

/// The full corpus, in canonical order.
pub const CORPUS: [CorpusEntry; 5] = [
    CorpusEntry {
        name: "quicksort",
        source: include_str!("../corpus/quicksort.asm"),
        description: "iterative quicksort of 256 pseudo-random keys with a sortedness check",
        golden_digest: QUICKSORT_DIGEST,
    },
    CorpusEntry {
        name: "matmul",
        source: include_str!("../corpus/matmul.asm"),
        description: "12x12 dense matrix multiply",
        golden_digest: MATMUL_DIGEST,
    },
    CorpusEntry {
        name: "qoi_decode",
        source: include_str!("../corpus/qoi_decode.asm"),
        description: "QOI-style run/diff/index/literal stream decoder with a 64-entry seen-table",
        golden_digest: QOI_DECODE_DIGEST,
    },
    CorpusEntry {
        name: "box_blur",
        source: include_str!("../corpus/box_blur.asm"),
        description: "3x3 box blur over a 32x32 grid",
        golden_digest: BOX_BLUR_DIGEST,
    },
    CorpusEntry {
        name: "memref",
        source: include_str!("../corpus/memref.asm"),
        description: "pointer chase over a 512-node scattered linked ring",
        golden_digest: MEMREF_DIGEST,
    },
];

/// Golden digests, verified by `cargo run -p recon-asm --example
/// corpus_digests` and this crate's tests. Each value is also baked
/// into the corresponding `.asm` epilogue.
pub const QUICKSORT_DIGEST: u64 = 0xee53_dfb1_8473_471a;
/// See [`QUICKSORT_DIGEST`].
pub const MATMUL_DIGEST: u64 = 0xaa5c_5adb_b025_f090;
/// See [`QUICKSORT_DIGEST`].
pub const QOI_DECODE_DIGEST: u64 = 0x3dc6_2b69_4dee_fa2f;
/// See [`QUICKSORT_DIGEST`].
pub const BOX_BLUR_DIGEST: u64 = 0x9401_b33c_8940_341a;
/// See [`QUICKSORT_DIGEST`].
pub const MEMREF_DIGEST: u64 = 0x2457_99f1_3dc8_5400;

/// Splices `payload` (assembly text: code, labels, `.data` lines) into
/// `host` at its [`GADGET_MARKER`] line, returning the combined source.
/// `None` when the host has no marker. The payload replaces the marker
/// line itself, so splicing is idempotent per marker and the host's
/// line structure around the splice is preserved.
#[must_use]
pub fn splice_gadget(host: &str, payload: &str) -> Option<String> {
    let mut out = String::with_capacity(host.len() + payload.len() + 1);
    let mut found = false;
    for line in host.lines() {
        if !found && line.trim() == GADGET_MARKER {
            found = true;
            out.push_str(payload);
            if !payload.ends_with('\n') {
                out.push('\n');
            }
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    found.then_some(out)
}

/// Finds a corpus entry by name.
#[must_use]
pub fn find(name: &str) -> Option<&'static CorpusEntry> {
    CORPUS.iter().find(|e| e.name == name)
}

/// All corpus benchmark names, in canonical order.
#[must_use]
pub fn names() -> Vec<&'static str> {
    CORPUS.iter().map(|e| e.name).collect()
}

/// Outcome of a functional (architectural) corpus run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SelfCheck {
    /// The digest word at [`DIGEST_ADDR`].
    pub digest: u64,
    /// The status word at [`STATUS_ADDR`].
    pub status: u64,
    /// Dynamic instructions executed.
    pub steps: u64,
    /// Whether the program reached `halt` within the step budget.
    pub halted: bool,
}

impl SelfCheck {
    /// Whether the program halted with a passing status word.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.halted && self.status == STATUS_PASS
    }
}

/// Runs an assembled program functionally (golden-model semantics),
/// applying the first entry spec's register seeds, optionally
/// overriding the pass count in [`PASS_REG`], and reads back the
/// digest/status words.
///
/// # Errors
///
/// Propagates [`ExecError`] from the functional model (a corpus bug).
pub fn run_self_check(
    p: &AsmProgram,
    passes: Option<u64>,
    max_steps: usize,
) -> Result<SelfCheck, ExecError> {
    let mut mem = SparseMem::from_image(&p.program.image);
    let entry = &p.entries[0];
    let mut state = ArchState::at_pc(entry.entry);
    for &(reg, val) in &entry.seeds {
        state.write(reg, val);
    }
    if let Some(n) = passes {
        state.write(PASS_REG, n);
    }
    let mut steps = 0u64;
    for _ in 0..max_steps {
        if state.halted {
            break;
        }
        step(&p.program, &mut state, &mut mem)?;
        steps += 1;
    }
    Ok(SelfCheck {
        digest: mem.peek(DIGEST_ADDR),
        status: mem.peek(STATUS_ADDR),
        steps,
        halted: state.halted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_corpus_program_assembles() {
        for e in &CORPUS {
            let p = e.assemble();
            assert!(p.program.code.len() > 10, "{} suspiciously small", e.name);
            assert_eq!(p.entries.len(), 1, "{} must be single-threaded", e.name);
        }
    }

    #[test]
    fn every_corpus_program_self_checks_at_one_pass() {
        for e in &CORPUS {
            let p = e.assemble();
            let r = run_self_check(&p, None, 50_000_000).unwrap();
            assert!(r.halted, "{} did not halt", e.name);
            assert_eq!(
                r.status, STATUS_PASS,
                "{} failed its own self-check (digest {:#x})",
                e.name, r.digest
            );
            assert_eq!(
                r.digest, e.golden_digest,
                "{} digest drifted from golden",
                e.name
            );
        }
    }

    #[test]
    fn digests_are_pass_count_invariant() {
        for e in &CORPUS {
            let p = e.assemble();
            let one = run_self_check(&p, Some(1), 50_000_000).unwrap();
            let four = run_self_check(&p, Some(4), 200_000_000).unwrap();
            assert!(one.passed() && four.passed(), "{}", e.name);
            assert_eq!(
                one.digest, four.digest,
                "{} digest varies with passes",
                e.name
            );
            assert!(
                four.steps > one.steps * 3,
                "{} passes do not scale work",
                e.name
            );
        }
    }

    #[test]
    fn every_source_has_a_gadget_marker() {
        for e in &CORPUS {
            assert!(
                e.source.lines().any(|l| l.trim() == GADGET_MARKER),
                "{} has no {GADGET_MARKER} line",
                e.name
            );
        }
    }

    #[test]
    fn corpus_programs_never_touch_reserved_registers() {
        for e in &CORPUS {
            let p = e.assemble();
            for inst in &p.program.code {
                let mut regs: Vec<ArchReg> = inst.srcs().into_iter().flatten().collect();
                regs.extend(inst.dst());
                for r in regs {
                    assert!(
                        r.index() < 29,
                        "{} uses reserved register {r} in {inst}",
                        e.name
                    );
                }
            }
        }
    }
}

//! # recon-asm
//!
//! The real-program frontend for the recon ISA: a text assembler
//! ([`assemble`]), a canonical disassembler ([`disassemble`]), and the
//! embedded benchmark [`corpus`] — five hand-written programs
//! (quicksort, matmul, a QOI-style decoder, box blur, and a
//! pointer-chasing memory benchmark) with self-checking epilogues.
//!
//! The assembler accepts a line-oriented language whose instruction
//! syntax matches what `Inst`'s `Display` impl prints, so disassembled
//! programs re-assemble. See [`text`] for the grammar and [`corpus`]
//! for the corpus conventions (digest/status addresses, the reserved
//! gadget registers, and the `;@gadget` splice marker used by
//! `recon verify --embedded`).
//!
//! ```
//! use recon_asm::{assemble, disassemble};
//!
//! let p = assemble("main:\n    li r1, 42\n    halt\n")?;
//! assert_eq!(p.program.code.len(), 2);
//! let text = disassemble(&p);
//! assert!(recon_asm::assemble(&text)?.same_binary(&p));
//! # Ok::<(), recon_asm::AsmTextError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod disasm;
pub mod text;

pub use disasm::disassemble;
pub use text::{assemble, suggest, AsmProgram, AsmTextError, EntrySpec};

//! Canonical disassembly: [`AsmProgram`] → re-assemblable text.
//!
//! The output is a *fixed point* of the assembler: re-assembling it
//! yields the same binary (code, image, entries), and disassembling
//! that binary yields byte-identical text. Labels are renamed to
//! `L0..Ln` in instruction order, so source label names are not
//! preserved — only structure is.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use recon_isa::Inst;

use crate::text::AsmProgram;

/// Signed hex offset: `+0x10`, `-0x8`, `+0x0`.
fn fmt_offset(offset: i64) -> String {
    if offset < 0 {
        format!("-{:#x}", offset.unsigned_abs())
    } else {
        format!("+{offset:#x}")
    }
}

/// Renders `p` as canonical assembly text.
#[must_use]
pub fn disassemble(p: &AsmProgram) -> String {
    // Every branch/jump target and entry point gets a label, named in
    // ascending instruction-index order.
    let mut targets: BTreeMap<usize, String> = BTreeMap::new();
    for inst in &p.program.code {
        if let Inst::Branch { target, .. } | Inst::Jump { target } = *inst {
            targets.entry(target).or_default();
        }
    }
    for e in &p.entries {
        targets.entry(e.entry).or_default();
    }
    for (k, (_, name)) in targets.iter_mut().enumerate() {
        *name = format!("L{k}");
    }

    let mut out = String::new();
    for e in &p.entries {
        let _ = write!(out, ".entry {}", targets[&e.entry]);
        for &(reg, val) in &e.seeds {
            let _ = write!(out, " {reg}={val:#x}");
        }
        out.push('\n');
    }
    for (addr, val) in p.program.image.iter() {
        let _ = writeln!(out, ".data {addr:#x} {val:#x}");
    }
    for (i, inst) in p.program.code.iter().enumerate() {
        if let Some(name) = targets.get(&i) {
            let _ = writeln!(out, "{name}:");
        }
        // Memory operands are formatted here rather than via `Inst`'s
        // `Display`, which prints negative offsets as two's-complement
        // hex (not re-assemblable).
        match *inst {
            Inst::Branch { kind, a, b, target } => {
                let _ = writeln!(out, "    {kind} {a}, {b}, {}", targets[&target]);
            }
            Inst::Jump { target } => {
                let _ = writeln!(out, "    j {}", targets[&target]);
            }
            Inst::Load { dst, base, offset } => {
                let _ = writeln!(out, "    ld {dst}, [{base}{}]", fmt_offset(offset));
            }
            Inst::Store { val, base, offset } => {
                let _ = writeln!(out, "    st {val}, [{base}{}]", fmt_offset(offset));
            }
            Inst::AmoAdd {
                dst,
                base,
                offset,
                add,
            } => {
                let _ = writeln!(
                    out,
                    "    amoadd {dst}, [{base}{}], {add}",
                    fmt_offset(offset)
                );
            }
            ref other => {
                let _ = writeln!(out, "    {other}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::assemble;

    #[test]
    fn disassembly_is_a_fixed_point() {
        let src = "
.entry main r26=2
.data 0x100 0x2a
main:
    li r1, 0x100
    ld r2, [r1+0x0]
top:
    subi r2, r2, 1
    bne r2, r0, top
    st r2, [r1-0x8]
    halt
";
        let p1 = assemble(src).unwrap();
        let text2 = disassemble(&p1);
        let p2 = assemble(&text2).unwrap();
        assert!(p1.same_binary(&p2), "reassembly changed the binary");
        assert_eq!(disassemble(&p2), text2, "disassembly is not canonical");
    }

    #[test]
    fn labels_are_renamed_in_index_order() {
        let src = "
    j skip
early:
    nop
skip:
    beq r0, r0, early
    halt
";
        let text = disassemble(&assemble(src).unwrap());
        // Entry (index 0) is L0, `early` (1) is L1, `skip` (2) is L2.
        assert!(text.contains("    j L2\n"), "{text}");
        assert!(text.contains("L1:\n    nop"), "{text}");
    }
}

//! Malformed-source corpus: every broken input must produce a clean
//! line/column-diagnosed [`recon_asm::AsmTextError`] — never a panic.

use recon_asm::assemble;

/// (name, source, expected (line, col), expected message fragment)
const MALFORMED: &[(&str, &str, (usize, usize), &str)] = &[
    (
        "bad-register",
        "    li r32, 1\n    halt\n",
        (1, 8),
        "unknown register 'r32'",
    ),
    (
        "bad-alias",
        "    li acc, 1\n    halt\n",
        (1, 8),
        "unknown register or alias 'acc'",
    ),
    (
        "alias-typo-suggests",
        ".alias accum r5\n    li acum, 1\n    halt\n",
        (2, 8),
        "did you mean 'accum'",
    ),
    (
        "dangling-label",
        "    j nowhere\n    halt\n",
        (1, 7),
        "unknown label 'nowhere'",
    ),
    (
        "label-after-end",
        "    j end\n    halt\nend:\n",
        (1, 7),
        "bound past the last instruction",
    ),
    (
        "duplicate-label",
        "dup:\n    nop\ndup:\n    halt\n",
        (3, 1),
        "label 'dup' defined twice",
    ),
    (
        "misaligned-data",
        ".data 0x101 5\n    halt\n",
        (1, 7),
        "misaligned data address 0x101",
    ),
    (
        "misaligned-words",
        ".words 0xc 1 2\n    halt\n",
        (1, 8),
        "misaligned data address",
    ),
    (
        "overflowing-immediate",
        "    li r1, 0x10000000000000000\n    halt\n",
        (1, 12),
        "overflows 64 bits",
    ),
    (
        "overflowing-offset",
        "    ld r1, [r2+0x8000000000000000]\n    halt\n",
        (1, 15),
        "overflows a signed 64-bit offset",
    ),
    (
        "malformed-number",
        "    li r1, 0xzz\n    halt\n",
        (1, 12),
        "malformed number",
    ),
    (
        "unknown-mnemonic",
        "    hlat\n",
        (1, 5),
        "did you mean 'halt'",
    ),
    (
        "unknown-directive",
        ".dat 0x100 1\n    halt\n",
        (1, 1),
        "did you mean '.data'",
    ),
    (
        "bad-arity",
        "    add r1, r2\n    halt\n",
        (1, 13),
        "'add' expects 3 operands",
    ),
    (
        "bad-mem-operand",
        "    ld r1, (r2+8)\n    halt\n",
        (1, 12),
        "malformed memory operand",
    ),
    (
        "spaced-mem-operand",
        "    ld r1, [r2 + 8]\n    halt\n",
        (1, 12),
        "'ld' expects 2 operands",
    ),
    (
        "bad-ldx-operand",
        "    ldx r1, [r2+r3*4]\n    halt\n",
        (1, 13),
        "expected [base+index*8]",
    ),
    (
        "bad-entry-seed",
        ".entry main r5:1\nmain:\n    halt\n",
        (1, 13),
        "malformed register seed",
    ),
    (
        "entry-unknown-label",
        ".entry start\nmain:\n    halt\n",
        (1, 8),
        "unknown label 'start'",
    ),
    (
        "alias-shadows-register",
        ".alias r5 r6\n    halt\n",
        (1, 8),
        "shadows a register",
    ),
    (
        "alias-defined-twice",
        ".alias a r1\n.alias a r2\n    halt\n",
        (2, 8),
        "alias 'a' defined twice",
    ),
    ("no-halt", "    nop\n    nop\n", (2, 1), "no halt"),
    (
        "zero-count-too-large",
        ".zero 0x0 99999999999\n    halt\n",
        (1, 11),
        "too large",
    ),
    (
        "invalid-label-name",
        "9lives:\n    halt\n",
        (1, 1),
        "invalid label name",
    ),
];

#[test]
fn malformed_sources_produce_located_diagnostics() {
    for &(name, src, (line, col), fragment) in MALFORMED {
        let err = assemble(src)
            .map(|_| ())
            .expect_err(&format!("{name}: expected an error"));
        assert_eq!(
            (err.line, err.col),
            (line, col),
            "{name}: wrong position in '{err}'"
        );
        assert!(
            err.msg.contains(fragment),
            "{name}: message '{}' lacks '{fragment}'",
            err.msg
        );
        // Display renders line:col.
        assert!(err.to_string().starts_with(&format!("line {line}:{col}:")));
    }
}

#[test]
fn empty_and_comment_only_sources_diagnose_missing_halt() {
    for src in ["", "\n\n", "# just a comment\n; another\n"] {
        let err = assemble(src).expect_err("expected missing-halt error");
        assert!(err.msg.contains("no halt"), "{}", err.msg);
    }
}

/// Fuzz-ish robustness: truncating or mangling corpus sources at any
/// line boundary must never panic.
#[test]
fn truncated_corpus_sources_never_panic() {
    for e in &recon_asm::corpus::CORPUS {
        let lines: Vec<&str> = e.source.lines().collect();
        for cut in (0..lines.len()).step_by(7) {
            let truncated = lines[..cut].join("\n");
            let _ = assemble(&truncated); // may err; must not panic
        }
    }
}

//! Golden assembler tests: parse → assemble → disassemble → reparse
//! must be byte-identical (the disassembly is a canonical fixed point)
//! and binary-identical (same code, image, and entry specs) for every
//! corpus program and a set of hand-written sources.

use recon_asm::{assemble, corpus, disassemble};

fn roundtrip(name: &str, src: &str) {
    let p1 = assemble(src).unwrap_or_else(|e| panic!("{name}: source does not assemble: {e}"));
    let text2 = disassemble(&p1);
    let p2 = assemble(&text2).unwrap_or_else(|e| {
        panic!("{name}: canonical disassembly does not reassemble: {e}\n{text2}")
    });
    assert!(
        p1.same_binary(&p2),
        "{name}: reassembling the disassembly changed the binary"
    );
    let text3 = disassemble(&p2);
    assert_eq!(text2, text3, "{name}: disassembly is not a fixed point");
}

#[test]
fn every_corpus_program_round_trips() {
    for e in &corpus::CORPUS {
        roundtrip(e.name, e.source);
    }
}

#[test]
fn negative_offsets_round_trip() {
    roundtrip(
        "negative-offsets",
        "
    li r1, 0x100
    ld r2, [r1-8]
    st r2, [r1-0x10]
    amoadd r3, [r1-24], r2
    halt
",
    );
}

#[test]
fn multi_entry_programs_round_trip() {
    roundtrip(
        "multi-entry",
        "
.entry main r26=1
.entry worker r5=0xff r6=-1
main:
    nop
    halt
worker:
    addi r1, r1, 1
    halt
",
    );
}

#[test]
fn data_sections_round_trip() {
    roundtrip(
        "data-sections",
        "
.data 0x100 18446744073709551615
.words 0x200 1 0x2 3
.zero 0x300 4
    ld r1, [r0+0x100]
    halt
",
    );
}

#[test]
fn canonical_form_reassembles_under_all_alu_ops() {
    let mut src = String::new();
    for op in [
        "add", "sub", "mul", "and", "or", "xor", "shl", "shr", "sltu",
    ] {
        src.push_str(&format!("    {op} r1, r2, r3\n"));
        src.push_str(&format!("    {op}i r1, r2, 0x7\n"));
    }
    src.push_str("    ldx r4, [r1+r2*8]\n    halt\n");
    roundtrip("all-alu-ops", &src);
}

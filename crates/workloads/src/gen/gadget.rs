//! The *gadget loop* generator — the central performance kernel of the
//! evaluation.
//!
//! Each iteration loads a branch condition, branches on it, and (when
//! taken) dereferences a pointer chain — the exact shape whose
//! memory-level parallelism secure speculation schemes sacrifice and
//! ReCon recovers:
//!
//! ```text
//! cond = conds[i % cond_lines];        // latency grows with cond_lines
//! if (cond) {                          // unresolved while cond in flight
//!     p  = ptrs[i % slots];            // LD1 (completes under shadow)
//!     v  = *p;  (… chain …)            // LD2..: delayed by NDA/STT
//!     sum += v;
//! }
//! ```
//!
//! The loop body is unrolled 16× and individual unroll positions can be
//! specialized:
//!
//! * **storing** iterations write the pointer back — the word is
//!   concealed again and ReCon must re-reveal (§4.4);
//! * **indirect** iterations compute the target address from *two*
//!   loaded indices combined by ALU ops — there is no direct-dependence
//!   load pair, so the leakage is invisible to ReCon (though not to
//!   full DIFT): the Figure 4/9 coverage discriminator. Indirect
//!   address arithmetic is also where NDA falls behind STT: NDA blocks
//!   the ALU chain itself, STT only the final load;
//! * with `cyclic`, the deepest chain level holds pointers back into
//!   the pointer table and one extra dereference reads them — every
//!   word in the chain is then eventually *dereferenced and revealed*,
//!   which is what shrinks the tainted-load population (Figure 7).

use recon_isa::{reg::names::*, Asm, Program};

use super::{mask_of, permutation, rng, Rng, COND_BASE, PTR_BASE, TGT_BASE, TGT_LEVEL_STRIDE};

/// Unroll factor of the gadget loop.
pub const UNROLL: u64 = 16;

/// Parameters of [`generate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GadgetParams {
    /// Pointer-table entries (power of two, ≥ [`UNROLL`]).
    pub slots: u64,
    /// Branch-condition cache lines touched (power of two): the
    /// speculation-window knob (beyond-LLC arrays keep branches
    /// unresolved for a full memory latency).
    pub cond_lines: u64,
    /// Passes over the pointer table (pointer *reuse*: what lets
    /// ReCon's reveals pay off).
    pub passes: u64,
    /// Dereference-chain depth (≥ 1) for direct iterations.
    pub depth: u32,
    /// Fraction (per 256) of conditions that are taken.
    pub taken_per_256: u16,
    /// How many of each 16 unrolled iterations store the pointer back.
    pub stores_per_16: u8,
    /// How many of each 16 unrolled iterations use indirect (two-source)
    /// address computation.
    pub indirect_per_16: u8,
    /// How many of each 16 unrolled iterations use a **multi-source**
    /// load (`ldx base+index*8`, §5.1.1): both address operands come
    /// straight from loads, so pairs exist *per operand* — but only a
    /// multi-source-capable LPT (`ReconConfig::multi_source`) detects
    /// them.
    pub multi_per_16: u8,
    /// Close the chain: the deepest level points back into the pointer
    /// table and is dereferenced once more, so every chain word is
    /// revealed by some pair.
    pub cyclic: bool,
    /// Byte stride between dereference targets (8 = packed, 64 = one
    /// target per cache line).
    pub tgt_stride: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GadgetParams {
    fn default() -> Self {
        GadgetParams {
            slots: 256,
            cond_lines: 64,
            passes: 4,
            depth: 1,
            taken_per_256: 256,
            stores_per_16: 0,
            indirect_per_16: 0,
            multi_per_16: 0,
            cyclic: false,
            tgt_stride: 8,
            seed: 1,
        }
    }
}

/// Base address of the secondary index table for indirect iterations.
const IDX2_OFFSET: i64 = 0x8_0000;
/// Offsets of the multi-source base/index tables within the pointer
/// region, and their dedicated target region.
const MS_BASE_OFFSET: i64 = 0x10_0000;
const MS_IDX_OFFSET: i64 = 0x18_0000;
const MS_TGT: u64 = TGT_BASE + TGT_LEVEL_STRIDE * 9;

/// Emits one iteration body.
fn emit_body(a: &mut Asm, p: &GadgetParams, cond_mask: u64, ptr_mask: u64, kind: BodyKind) {
    a.add(R10, R26, R20);
    a.load(R2, R10, 0); // cond load
    let skip = a.new_label();
    a.beq(R2, R0, skip);
    a.add(R11, R27, R21);
    match kind {
        BodyKind::Indirect => {
            // ia = idxa[i]; ib = idxb[i]; v = tgt[(ia + ib) * stride]
            // (no direct load pair: the address source is an `add`;
            // NDA additionally stalls the whole ALU chain). The index
            // tables live at IDX2_OFFSET so they never alias the
            // pointer table.
            a.load(R3, R11, IDX2_OFFSET);
            a.load(R4, R11, IDX2_OFFSET + (p.slots * 8) as i64);
            a.add(R6, R3, R4);
            a.muli(R6, R6, p.tgt_stride);
            a.li(R7, TGT_BASE + TGT_LEVEL_STRIDE * 8);
            a.add(R7, R7, R6);
            a.load(R8, R7, 0);
            a.add(R5, R5, R8);
        }
        BodyKind::Multi => {
            // base = bases[i]; idx = idxs[i]; v = mem[base + idx*8].
            // Both operands are pristine load results: two pairs per
            // dereference for a multi-source LPT, none for the default.
            a.load(R3, R11, MS_BASE_OFFSET);
            a.load(R4, R11, MS_IDX_OFFSET);
            a.loadidx(R6, R3, R4);
            a.add(R5, R5, R6);
        }
        BodyKind::Direct { store } => {
            a.load(R3, R11, 0); // LD1: the pointer
            a.load(R4, R3, 0); // LD2: first dereference (pair)
            for _ in 1..p.depth {
                a.load(R4, R4, 0); // deeper links (each a pair)
            }
            if p.cyclic {
                a.load(R4, R4, 0); // closes the cycle: reads a PTR word
            }
            a.add(R5, R5, R4);
            if store {
                // Write the pointer back: conceals the word and casts a
                // store shadow until the address resolves.
                a.store(R3, R11, 0);
            }
        }
    }
    a.bind(skip);
    a.addi(R20, R20, 64).andi(R20, R20, cond_mask);
    a.addi(R21, R21, 8).andi(R21, R21, ptr_mask);
}

#[derive(Clone, Copy)]
enum BodyKind {
    Direct { store: bool },
    Indirect,
    Multi,
}

/// Builds the gadget-loop program.
///
/// # Panics
///
/// Panics if `slots`/`cond_lines` are not powers of two, `slots` is
/// smaller than [`UNROLL`], `depth` is 0, or the per-16 counts exceed 16.
#[must_use]
pub fn generate(p: GadgetParams) -> Program {
    assert!(p.depth >= 1, "depth must be at least 1");
    assert!(p.slots >= UNROLL, "slots must cover one unrolled group");
    assert!(
        p.stores_per_16 <= 16 && p.indirect_per_16 <= 16,
        "per-16 counts are 0..=16"
    );
    assert!(
        u64::from(p.stores_per_16) + u64::from(p.indirect_per_16) + u64::from(p.multi_per_16) <= 16,
        "storing and indirect positions must not overlap"
    );
    let mut r = rng(p.seed);
    let mut a = Asm::new();

    // ---- data ----------------------------------------------------------
    for i in 0..p.cond_lines {
        let taken = u64::from(r.below(256) < u64::from(p.taken_per_256));
        a.data(COND_BASE + i * 64, taken);
    }
    // Index tables for indirect iterations (harmless if unused).
    if p.indirect_per_16 > 0 {
        let half = p.slots / 2;
        for i in 0..2 * p.slots {
            a.data(PTR_BASE + IDX2_OFFSET as u64 + i * 8, r.below(half));
        }
        for i in 0..p.slots {
            a.data(
                TGT_BASE + TGT_LEVEL_STRIDE * 8 + i * p.tgt_stride,
                i * 3 + 1,
            );
        }
    }
    if p.multi_per_16 > 0 {
        for i in 0..p.slots {
            a.data(
                (PTR_BASE as i64 + MS_BASE_OFFSET) as u64 + i * 8,
                MS_TGT + r.below(p.slots) * 8,
            );
            a.data(
                (PTR_BASE as i64 + MS_IDX_OFFSET) as u64 + i * 8,
                r.below(p.slots),
            );
        }
        for i in 0..2 * p.slots {
            a.data(MS_TGT + i * 8, i * 7 + 5);
        }
    }
    // Pointer-chain levels for direct iterations.
    for level in 0..p.depth {
        let this = if level == 0 {
            PTR_BASE
        } else {
            TGT_BASE + u64::from(level - 1) * TGT_LEVEL_STRIDE
        };
        let this_stride = if level == 0 { 8 } else { p.tgt_stride };
        let next = TGT_BASE + u64::from(level) * TGT_LEVEL_STRIDE;
        let perm = permutation(p.slots as usize, &mut r);
        for (i, &t) in perm.iter().enumerate() {
            a.data(
                this + i as u64 * this_stride,
                next + t as u64 * p.tgt_stride,
            );
        }
    }
    let last = TGT_BASE + u64::from(p.depth - 1) * TGT_LEVEL_STRIDE;
    if p.cyclic {
        // Deepest level points back into the pointer table.
        let perm = permutation(p.slots as usize, &mut r);
        for (i, &t) in perm.iter().enumerate() {
            a.data(last + i as u64 * p.tgt_stride, PTR_BASE + t as u64 * 8);
        }
    } else {
        for i in 0..p.slots {
            a.data(last + i * p.tgt_stride, i * 3 + 1);
        }
    }

    // ---- code ----------------------------------------------------------
    let cond_mask = mask_of(p.cond_lines * 64);
    let ptr_mask = mask_of(p.slots * 8);
    let groups = (p.passes * p.slots / UNROLL).max(1);

    // Which unroll positions are special.
    let mut kinds = [BodyKind::Direct { store: false }; UNROLL as usize];
    for k in 0..p.indirect_per_16 {
        kinds[(k as usize) * 16 / usize::from(p.indirect_per_16.max(1))] = BodyKind::Indirect;
    }
    let mut placed_multi = 0;
    for kind in kinds.iter_mut() {
        if placed_multi == p.multi_per_16 {
            break;
        }
        if matches!(kind, BodyKind::Direct { .. }) {
            *kind = BodyKind::Multi;
            placed_multi += 1;
        }
    }
    let mut placed = 0;
    for slot in (0..UNROLL as usize).rev() {
        if placed == p.stores_per_16 {
            break;
        }
        if matches!(kinds[slot], BodyKind::Direct { .. }) {
            kinds[slot] = BodyKind::Direct { store: true };
            placed += 1;
        }
    }

    a.li(R26, COND_BASE).li(R27, PTR_BASE).li(R5, 0);
    a.li(R20, 0).li(R21, 0).li(R22, 0).li(R23, groups);
    let top = a.here();
    for kind in kinds {
        emit_body(&mut a, &p, cond_mask, ptr_mask, kind);
    }
    a.addi(R22, R22, 1);
    a.bltu_to(R22, R23, top);
    a.halt();
    a.assemble().expect("gadget generator emits valid programs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::{run_collect, Inst, MemEffect};

    #[test]
    fn generates_valid_program_that_terminates() {
        let p = generate(GadgetParams {
            slots: 16,
            cond_lines: 4,
            passes: 2,
            ..Default::default()
        });
        let (trace, state) = run_collect(&p, 1_000_000).unwrap();
        assert!(state.halted);
        assert!(trace.len() > 2 * 16 * 5, "does real work");
    }

    #[test]
    fn direct_variant_contains_load_pairs() {
        let p = generate(GadgetParams {
            slots: 16,
            cond_lines: 2,
            passes: 1,
            ..Default::default()
        });
        let (trace, _) = run_collect(&p, 100_000).unwrap();
        let loads = trace.iter().filter(|r| r.inst.is_load()).count();
        assert_eq!(loads, 16 * 3, "cond + LD1 + LD2 per iteration");
    }

    #[test]
    fn depth_extends_the_chain() {
        let shallow = generate(GadgetParams {
            slots: 16,
            cond_lines: 2,
            passes: 1,
            depth: 1,
            ..Default::default()
        });
        let deep = generate(GadgetParams {
            slots: 16,
            cond_lines: 2,
            passes: 1,
            depth: 3,
            ..Default::default()
        });
        let (t1, _) = run_collect(&shallow, 100_000).unwrap();
        let (t3, _) = run_collect(&deep, 100_000).unwrap();
        let l1 = t1.iter().filter(|r| r.inst.is_load()).count();
        let l3 = t3.iter().filter(|r| r.inst.is_load()).count();
        assert_eq!(l3 - l1, 16 * 2, "two extra loads per iteration");
    }

    #[test]
    fn cyclic_adds_one_dereference_reading_ptr_words() {
        let p = generate(GadgetParams {
            slots: 16,
            cond_lines: 2,
            passes: 1,
            cyclic: true,
            ..Default::default()
        });
        let (trace, _) = run_collect(&p, 100_000).unwrap();
        // cond + LD1 + LD2 + cycle-closing load.
        let loads = trace.iter().filter(|r| r.inst.is_load()).count();
        assert_eq!(loads, 16 * 4);
        // The final loads read PTR_BASE words.
        let ptr_reads = trace
            .iter()
            .filter(|r| {
                matches!(r.mem, MemEffect::Load { addr, .. }
                    if (PTR_BASE..PTR_BASE + 16 * 8).contains(&addr))
            })
            .count();
        assert_eq!(ptr_reads, 2 * 16, "LD1 + the cycle-closing load");
    }

    #[test]
    fn not_taken_conditions_skip_the_body() {
        let p = generate(GadgetParams {
            slots: 16,
            cond_lines: 8,
            passes: 1,
            taken_per_256: 0,
            ..Default::default()
        });
        let (trace, _) = run_collect(&p, 100_000).unwrap();
        let loads = trace.iter().filter(|r| r.inst.is_load()).count();
        assert_eq!(loads, 16, "only the cond loads execute");
    }

    #[test]
    fn stores_per_16_stores_real_slots() {
        let p = generate(GadgetParams {
            slots: 16,
            cond_lines: 2,
            passes: 4,
            stores_per_16: 2,
            ..Default::default()
        });
        let (trace, _) = run_collect(&p, 100_000).unwrap();
        let stores: Vec<u64> = trace
            .iter()
            .filter_map(|t| match t.mem {
                MemEffect::Store { addr, .. } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(stores.len(), 4 * 2, "2 stores per group of 16, 4 groups");
        assert!(stores
            .iter()
            .all(|&a| (PTR_BASE..PTR_BASE + 16 * 8).contains(&a)));
    }

    #[test]
    fn mixed_iterations_have_both_flavors() {
        let p = generate(GadgetParams {
            slots: 32,
            cond_lines: 2,
            passes: 2,
            indirect_per_16: 4,
            stores_per_16: 2,
            ..Default::default()
        });
        // Static check: the unrolled body contains both muli-based
        // (indirect) and store-containing (direct) iterations.
        let mulis = p
            .code
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::AluImm {
                        kind: recon_isa::AluKind::Mul,
                        ..
                    }
                )
            })
            .count();
        let stores = p.code.iter().filter(|i| i.is_store()).count();
        assert_eq!(mulis, 4);
        assert_eq!(stores, 2);
        let (_, state) = run_collect(&p, 100_000).unwrap();
        assert!(state.halted);
    }

    #[test]
    fn stored_pointer_round_trips() {
        // The store writes the same pointer back, so results match a
        // store-free run.
        let with = generate(GadgetParams {
            slots: 16,
            cond_lines: 2,
            passes: 2,
            stores_per_16: 2,
            seed: 3,
            ..Default::default()
        });
        let without = generate(GadgetParams {
            slots: 16,
            cond_lines: 2,
            passes: 2,
            stores_per_16: 0,
            seed: 3,
            ..Default::default()
        });
        let (_, s1) = run_collect(&with, 100_000).unwrap();
        let (_, s2) = run_collect(&without, 100_000).unwrap();
        assert_eq!(s1.read(R5), s2.read(R5));
    }

    #[test]
    fn pure_indirect_has_no_adjacent_load_pairs() {
        let p = generate(GadgetParams {
            slots: 16,
            cond_lines: 2,
            passes: 1,
            indirect_per_16: 16,
            ..Default::default()
        });
        for w in p.code.windows(2) {
            if let (Inst::Load { dst, .. }, Inst::Load { base, .. }) = (&w[0], &w[1]) {
                assert_ne!(dst, base, "indirect variant must not form pairs");
            }
        }
        let (_, state) = run_collect(&p, 100_000).unwrap();
        assert!(state.halted);
    }

    #[test]
    fn multi_iterations_emit_indexed_loads() {
        let p = generate(GadgetParams {
            slots: 32,
            cond_lines: 2,
            passes: 2,
            multi_per_16: 4,
            ..Default::default()
        });
        let ldx = p
            .code
            .iter()
            .filter(|i| matches!(i, Inst::LoadIdx { .. }))
            .count();
        assert_eq!(ldx, 4);
        let (_, state) = run_collect(&p, 1_000_000).unwrap();
        assert!(state.halted);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p1 = generate(GadgetParams {
            slots: 16,
            cond_lines: 4,
            seed: 9,
            ..Default::default()
        });
        let p2 = generate(GadgetParams {
            slots: 16,
            cond_lines: 4,
            seed: 9,
            ..Default::default()
        });
        assert_eq!(p1, p2);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_specials_rejected() {
        let _ = generate(GadgetParams {
            stores_per_16: 10,
            indirect_per_16: 10,
            ..Default::default()
        });
    }
}

//! Stencil generator — the `cactuBSSN`/`nab`/`milc` character: regular
//! neighborhood computation with stores on every element. Stores cast
//! shadows (until their addresses resolve quickly) and conceal words,
//! but there are no pointer dereferences, so load pairs are rare.

use recon_isa::{reg::names::*, Asm, Program};

use super::STREAM_BASE;

/// Parameters of [`generate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StencilParams {
    /// Grid points (1-D).
    pub points: u64,
    /// Sweeps over the grid.
    pub sweeps: u64,
}

impl Default for StencilParams {
    fn default() -> Self {
        StencilParams {
            points: 4096,
            sweeps: 2,
        }
    }
}

/// Builds a 1-D three-point stencil: `b[i] = a[i-1] + a[i] + a[i+1]`,
/// alternating the two arrays between sweeps.
#[must_use]
pub fn generate(p: StencilParams) -> Program {
    let mut a = Asm::new();
    let src = STREAM_BASE;
    let dst = STREAM_BASE + p.points * 8 + 64;
    for i in 0..p.points {
        a.data(src + i * 8, i % 97);
        a.data(dst + i * 8, 0);
    }
    a.li(R22, 0).li(R23, p.sweeps).li(R26, src).li(R27, dst);
    let sweep = a.here();
    a.li(R20, 1);
    a.li(R21, p.points - 1);
    let top = a.here();
    a.shli(R10, R20, 3);
    a.add(R10, R10, R26);
    a.load(R2, R10, -8);
    a.load(R3, R10, 0);
    a.load(R4, R10, 8);
    a.add(R5, R2, R3);
    a.add(R5, R5, R4);
    a.shli(R11, R20, 3);
    a.add(R11, R11, R27);
    a.store(R5, R11, 0);
    a.addi(R20, R20, 1);
    a.bltu_to(R20, R21, top);
    // Swap src/dst for the next sweep.
    a.add(R1, R26, R0);
    a.add(R26, R27, R0);
    a.add(R27, R1, R0);
    a.addi(R22, R22, 1);
    a.bltu_to(R22, R23, sweep);
    a.halt();
    a.assemble()
        .expect("stencil generator emits valid programs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::{run_collect, SparseMem};

    #[test]
    fn computes_three_point_sums() {
        let prm = StencilParams {
            points: 8,
            sweeps: 1,
        };
        let p = generate(prm);
        let mut mem = SparseMem::from_image(&p.image);
        recon_isa::run_with(&p, &mut mem, 1_000_000, |_| {}).unwrap();
        let dst = STREAM_BASE + 8 * 8 + 64;
        // b[1] = a[0]+a[1]+a[2] = 0+1+2 = 3.
        assert_eq!(mem.peek(dst + 8), 3);
        // b[3] = 2+3+4.
        assert_eq!(mem.peek(dst + 24), 9);
    }

    #[test]
    fn sweeps_alternate_arrays() {
        let p = generate(StencilParams {
            points: 8,
            sweeps: 2,
        });
        let (_, state) = run_collect(&p, 1_000_000).unwrap();
        assert!(state.halted);
    }

    #[test]
    fn stores_every_interior_point() {
        let p = generate(StencilParams {
            points: 16,
            sweeps: 1,
        });
        let (trace, _) = run_collect(&p, 1_000_000).unwrap();
        let stores = trace.iter().filter(|t| t.inst.is_store()).count();
        assert_eq!(stores, 14, "points 1..15");
    }
}

//! Multithreaded (PARSEC-style) workload generators: four threads
//! sharing one address space, synchronized by `amoadd` barriers.
//!
//! Three sharing patterns cover the behaviours Figure 8 measures:
//!
//! * [`ParKind::SharedChase`] — all threads dereference the *same*
//!   read-only pointer table (`canneal`/`streamcluster` character).
//!   A reveal by one core travels to the others through the directory
//!   (§5.3), so ReCon's benefit compounds across cores.
//! * [`ParKind::DataParallel`] — threads work disjoint partitions with a
//!   barrier per pass (`blackscholes`/`swaptions` character); with
//!   `rotate`, partitions shift every pass so each core inherits
//!   reveals accumulated by another core.
//! * [`ParKind::ProducerConsumer`] — thread 0 rewrites the shared table
//!   each phase (concealing it) before the others dereference it
//!   (`dedup`/`ferret` character): ReCon must re-reveal every phase and
//!   the coherence protocol must keep the masks consistent.

use recon_isa::{reg::names::*, Asm};

use super::{mask_of, permutation, rng, COND_BASE, PTR_BASE, SYNC_BASE, TGT_BASE};
use crate::workload::{ThreadSpec, Workload};

/// Number of hardware threads in every PARSEC stand-in (Table 2 uses a
/// 4-core system for the parallel benchmarks).
pub const NUM_THREADS: usize = 4;

/// Sharing pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParKind {
    /// All threads chase the same shared pointers.
    SharedChase,
    /// Disjoint partitions with barriers; optionally rotating.
    DataParallel {
        /// Shift partitions by one thread every pass.
        rotate: bool,
    },
    /// Thread 0 rewrites the table each phase before the rest read it.
    ProducerConsumer,
}

/// Parameters of [`generate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParallelParams {
    /// Sharing pattern.
    pub kind: ParKind,
    /// Shared pointer-table slots (power of two, divisible by 4).
    pub slots: u64,
    /// Condition lines per thread (power of two).
    pub cond_lines: u64,
    /// Barrier-delimited passes.
    pub passes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ParallelParams {
    fn default() -> Self {
        ParallelParams {
            kind: ParKind::SharedChase,
            slots: 256,
            cond_lines: 16,
            passes: 4,
            seed: 8,
        }
    }
}

/// Emits an inline barrier: `amoadd` arrival on the phase counter, then
/// spin until all `NUM_THREADS` arrived. Uses `R9`, `R1`, `R2`; expects
/// `R30` = `SYNC_BASE`, `R28` = phase offset (advanced by 8), `R4` =
/// thread count.
fn emit_barrier(a: &mut Asm) {
    a.add(R9, R30, R28);
    a.li(R1, 1);
    a.amoadd(R2, R9, 0, R1);
    let spin = a.here();
    a.load(R2, R9, 0);
    a.bne_to(R2, R4, spin);
    a.addi(R28, R28, 8);
}

/// Emits the dereference work loop: `count` iterations over pointers
/// starting at the address in `R27`, with per-thread conditions based at
/// `R26`. The condition cursor `R23` persists across passes (so large
/// condition arrays keep streaming — the speculation-window knob).
/// Clobbers `R2/R3/R6/R10/R11/R21/R25/R24`; accumulates into `R5`.
fn emit_work_loop(a: &mut Asm, count: u64, cond_mask: u64, ptr_mask: u64) {
    a.li(R21, 0).li(R25, 0).li(R24, count);
    let top = a.here();
    a.add(R10, R26, R23);
    a.load(R2, R10, 0); // per-thread condition
    let skip = a.new_label();
    a.beq(R2, R0, skip);
    a.add(R11, R27, R21);
    a.load(R3, R11, 0); // LD1: shared pointer
    a.load(R6, R3, 0); // LD2: dereference (pair)
    a.add(R5, R5, R6);
    a.bind(skip);
    a.addi(R23, R23, 64).andi(R23, R23, cond_mask);
    a.addi(R21, R21, 8).andi(R21, R21, ptr_mask);
    a.addi(R25, R25, 1);
    a.bltu_to(R25, R24, top);
}

/// Builds a 4-thread workload. All threads share the program and start
/// at entry 0 with their id seeded in `R31`.
///
/// # Panics
///
/// Panics if `slots` is not a power of two divisible by 4, or
/// `cond_lines` is not a power of two.
#[must_use]
pub fn generate(p: ParallelParams) -> Workload {
    assert!(
        p.slots.is_multiple_of(4),
        "slots must divide into 4 partitions"
    );
    let mut r = rng(p.seed);
    let mut a = Asm::new();

    // Shared pointer table and targets.
    let perm = permutation(p.slots as usize, &mut r);
    for (i, &t) in perm.iter().enumerate() {
        a.data(PTR_BASE + i as u64 * 8, TGT_BASE + t as u64 * 8);
    }
    for i in 0..p.slots {
        a.data(TGT_BASE + i * 8, i + 11);
    }
    // Per-thread condition regions (always taken: parallel kernels are
    // loop-heavy, their speculation comes from bounds-style branches).
    for t in 0..NUM_THREADS as u64 {
        for i in 0..p.cond_lines {
            a.data(COND_BASE + t * p.cond_lines * 64 + i * 64, 1);
        }
    }
    // Barrier counters (one per phase; generously sized).
    let phases = p.passes * 2 + 2;
    for ph in 0..phases {
        a.data(SYNC_BASE + ph * 8, 0);
    }

    let cond_mask = mask_of(p.cond_lines * 64);
    let ptr_mask = mask_of(p.slots * 8);
    let quarter = p.slots / 4;

    // Common prologue. R31 = thread id (seeded by the simulator).
    a.li(R30, SYNC_BASE);
    a.li(R28, 0);
    a.li(R23, 0); // persistent condition cursor
    a.li(R4, NUM_THREADS as u64);
    a.li(R5, 0);
    // Per-thread condition base: R26 = COND_BASE + tid * region.
    a.li(R26, COND_BASE);
    a.muli(R1, R31, p.cond_lines * 64);
    a.add(R26, R26, R1);
    a.li(R22, 0); // pass counter

    let pass_top = a.here();
    match p.kind {
        ParKind::SharedChase => {
            a.li(R27, PTR_BASE);
            emit_work_loop(&mut a, p.slots, cond_mask, ptr_mask);
            emit_barrier(&mut a);
        }
        ParKind::DataParallel { rotate } => {
            // partition = (tid + pass * rotate) & 3
            if rotate {
                a.add(R1, R31, R22);
            } else {
                a.add(R1, R31, R0);
            }
            a.andi(R1, R1, 3);
            a.muli(R1, R1, quarter * 8);
            a.li(R27, PTR_BASE);
            a.add(R27, R27, R1);
            // Partition-local wrap: iterate exactly `quarter` pointers
            // linearly (no mask wrap needed since count == quarter).
            emit_work_loop(&mut a, quarter, cond_mask, ptr_mask);
            emit_barrier(&mut a);
        }
        ParKind::ProducerConsumer => {
            // Phase A: thread 0 rewrites every pointer (conceal).
            let not_producer = a.new_label();
            a.bne(R31, R0, not_producer);
            a.li(R27, PTR_BASE);
            a.li(R20, 0);
            let wtop = a.here();
            a.add(R11, R27, R20);
            a.load(R3, R11, 0);
            a.store(R3, R11, 0); // same value back: conceals the word
            a.addi(R20, R20, 8);
            a.li(R2, p.slots * 8);
            a.bltu_to(R20, R2, wtop);
            a.bind(not_producer);
            emit_barrier(&mut a);
            // Phase B: everyone dereferences the shared table twice
            // (produced data is typically consumed more than once, which
            // is what lets the re-reveals pay off).
            a.li(R27, PTR_BASE);
            emit_work_loop(&mut a, p.slots, cond_mask, ptr_mask);
            emit_work_loop(&mut a, p.slots, cond_mask, ptr_mask);
            emit_barrier(&mut a);
        }
    }
    a.addi(R22, R22, 1);
    a.li(R1, p.passes);
    a.bltu_to(R22, R1, pass_top);
    a.halt();

    let program = a
        .assemble()
        .expect("parallel generator emits valid programs");
    let threads = (0..NUM_THREADS)
        .map(|t| ThreadSpec {
            entry: 0,
            seeds: vec![(R31, t as u64)],
        })
        .collect();
    Workload { program, threads }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_threads() {
        let w = generate(ParallelParams::default());
        assert_eq!(w.num_threads(), NUM_THREADS);
        assert_eq!(w.threads[2].seeds, vec![(R31, 2)]);
        assert!(w.program.validate().is_ok());
    }

    #[test]
    fn all_kinds_assemble() {
        for kind in [
            ParKind::SharedChase,
            ParKind::DataParallel { rotate: false },
            ParKind::DataParallel { rotate: true },
            ParKind::ProducerConsumer,
        ] {
            let w = generate(ParallelParams {
                kind,
                slots: 64,
                cond_lines: 4,
                passes: 2,
                seed: 1,
            });
            assert!(w.program.validate().is_ok(), "{kind:?}");
        }
    }

    #[test]
    #[should_panic(expected = "partitions")]
    fn rejects_unpartitionable_slots() {
        let _ = generate(ParallelParams {
            slots: 6,
            ..Default::default()
        });
    }
}

//! Branch-heavy generator — the `deepsjeng`/`exchange2`/`gobmk`
//! character: dense, data-dependent control flow over in-cache data,
//! little pointer dereferencing. Mispredictions (not taint delays)
//! dominate, so secure schemes cost little and ReCon recovers little —
//! the low-ratio end of the paper's Figure 9 correlation.

use recon_isa::{reg::names::*, Asm, Program};

use super::{mask_of, rng, Rng, STREAM_BASE};

/// Parameters of [`generate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchyParams {
    /// Decision-value array size (power of two).
    pub values: u64,
    /// Iterations.
    pub iterations: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BranchyParams {
    fn default() -> Self {
        BranchyParams {
            values: 1024,
            iterations: 8192,
            seed: 6,
        }
    }
}

/// Builds the branchy program: each iteration loads a value and runs a
/// small decision cascade on its bits, accumulating different amounts
/// per path.
#[must_use]
pub fn generate(p: BranchyParams) -> Program {
    let mut r = rng(p.seed);
    let mut a = Asm::new();
    for i in 0..p.values {
        a.data(STREAM_BASE + i * 8, r.next_u64() & 0xFFFF);
    }
    let vmask = mask_of(p.values * 8);
    a.li(R26, STREAM_BASE)
        .li(R5, 0)
        .li(R20, 0)
        .li(R22, 0)
        .li(R23, p.iterations);
    let top = a.here();
    a.add(R10, R26, R20);
    a.load(R2, R10, 0);
    // Cascade on three bits of the loaded value.
    for bit in 0..3u64 {
        let els = a.new_label();
        let done = a.new_label();
        a.andi(R3, R2, 1 << bit);
        a.beq(R3, R0, els);
        a.addi(R5, R5, 3 + bit); // taken path
        a.muli(R6, R2, 3);
        a.jump(done);
        a.bind(els);
        a.addi(R5, R5, 1); // fall-through path
        a.xor(R6, R2, R5);
        a.bind(done);
        a.shri(R2, R2, 1);
    }
    a.addi(R20, R20, 8).andi(R20, R20, vmask);
    a.addi(R22, R22, 1);
    a.bltu_to(R22, R23, top);
    a.halt();
    a.assemble()
        .expect("branchy generator emits valid programs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::run_collect;

    #[test]
    fn terminates_and_accumulates() {
        let p = generate(BranchyParams {
            values: 16,
            iterations: 64,
            seed: 1,
        });
        let (trace, state) = run_collect(&p, 1_000_000).unwrap();
        assert!(state.halted);
        assert!(state.read(R5) >= 64 * 3, "at least 3 per iteration");
        let branches = trace.iter().filter(|t| t.taken.is_some()).count();
        assert_eq!(branches, 64 * 4, "3 cascade + 1 loop branch per iter");
    }

    #[test]
    fn no_dependent_load_pairs() {
        let p = generate(BranchyParams::default());
        let load_count = p.code.iter().filter(|i| i.is_load()).count();
        assert_eq!(load_count, 1, "one load per iteration, never dereferenced");
    }
}

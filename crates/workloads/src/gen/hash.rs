//! Pointer-stream probe generator — the `xalancbmk`/`perlbench`
//! character: a stream of *reference* words (bucket/entry pointers, as
//! in a chained hash table or a DOM tree) dereferenced through a
//! three-level chain with heavy reuse, under branch conditions loaded
//! from a configurable-latency array.
//!
//! The pointer graph is **cyclic** (entries point back into the
//! reference stream), so every word in the chain is eventually
//! dereferenced by some load pair and becomes *revealed*: ReCon
//! progressively strips the whole working set of its taints — the
//! paper's best-case benchmarks in Figures 5–7.

use recon_isa::{reg::names::*, Asm, Program};

use super::{mask_of, rng, Rng, COND_BASE, NODE_BASE, PTR_BASE, STREAM_BASE};

/// Parameters of [`generate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HashParams {
    /// Distinct buckets (power of two) — the reuse set.
    pub buckets: u64,
    /// Lookup operations.
    pub lookups: u64,
    /// Reference-stream length (power of two).
    pub keys: u64,
    /// Branch-condition lines (power of two): larger ⇒ slower branch
    /// resolution ⇒ longer speculation windows.
    pub cond_lines: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HashParams {
    fn default() -> Self {
        HashParams {
            buckets: 256,
            lookups: 4096,
            keys: 1024,
            cond_lines: 512,
            seed: 4,
        }
    }
}

/// Memory layout:
/// * `STREAM_BASE + i*8` — reference stream: pointers into the bucket
///   array;
/// * `PTR_BASE + b*8` — bucket words holding entry pointers;
/// * `NODE_BASE + b*64` — entries, whose first word points back into
///   the reference stream (cyclic);
/// * `COND_BASE + l*64` — branch conditions (all taken).
///
/// Each lookup walks four pair-forming loads:
///
/// ```text
/// if (conds[c]) {                  // gate: resolves at cond latency
///     bp = refs[i];                // reference load          (LD1)
///     e  = *bp;                    // bucket -> entry          (pair)
///     q  = *e;                     // entry -> stream word     (pair)
///     v  = *q;                     // stream -> bucket pointer (pair)
///     sum += v;
/// }
/// ```
#[must_use]
pub fn generate(p: HashParams) -> Program {
    let mut r = rng(p.seed);
    let mut a = Asm::new();

    for b in 0..p.buckets {
        let entry = NODE_BASE + b * 64;
        a.data(PTR_BASE + b * 8, entry); // bucket -> entry
                                         // Entry points back into the reference stream (cyclic graph).
        a.data(entry, STREAM_BASE + (b % p.keys) * 8);
    }
    for i in 0..p.keys {
        let bucket = r.below(p.buckets);
        a.data(STREAM_BASE + i * 8, PTR_BASE + bucket * 8);
    }
    for l in 0..p.cond_lines {
        a.data(COND_BASE + l * 64, 1);
    }

    let kmask = mask_of(p.keys * 8);
    let cmask = mask_of(p.cond_lines * 64);
    a.li(R26, STREAM_BASE).li(R27, COND_BASE).li(R5, 0);
    a.li(R20, 0).li(R21, 0).li(R22, 0).li(R23, p.lookups);
    let top = a.here();
    a.add(R10, R27, R21);
    a.load(R2, R10, 0); // cond load (latency knob)
    let skip = a.new_label();
    a.beq(R2, R0, skip);
    a.add(R11, R26, R20);
    a.load(R3, R11, 0); // LD1: reference (stream word)
    a.load(R4, R3, 0); // bucket -> entry (pair)
    a.load(R6, R4, 0); // entry -> stream word address (pair)
    a.load(R7, R6, 0); // stream word: a bucket pointer (pair)
    a.add(R5, R5, R7); // accumulate (pointer value; arithmetic only)
    a.bind(skip);
    a.addi(R20, R20, 8).andi(R20, R20, kmask);
    a.addi(R21, R21, 64).andi(R21, R21, cmask);
    a.addi(R22, R22, 1);
    a.bltu_to(R22, R23, top);
    a.halt();
    a.assemble().expect("hash generator emits valid programs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::{run_collect, MemEffect};

    #[test]
    fn terminates_and_accumulates() {
        let p = generate(HashParams {
            buckets: 8,
            lookups: 32,
            keys: 16,
            cond_lines: 4,
            seed: 1,
        });
        let (_, state) = run_collect(&p, 1_000_000).unwrap();
        assert!(state.halted);
        assert!(state.read(R5) > 0);
    }

    #[test]
    fn every_lookup_is_a_four_load_pair_chain() {
        let p = generate(HashParams {
            buckets: 8,
            lookups: 16,
            keys: 16,
            cond_lines: 2,
            seed: 1,
        });
        let (trace, _) = run_collect(&p, 1_000_000).unwrap();
        let loads = trace.iter().filter(|t| t.inst.is_load()).count();
        // cond + reference + bucket + entry + stream per lookup.
        assert_eq!(loads, 16 * 5);
    }

    #[test]
    fn graph_is_cyclic_through_the_stream() {
        let p = generate(HashParams {
            buckets: 8,
            lookups: 8,
            keys: 8,
            cond_lines: 2,
            seed: 2,
        });
        let (trace, _) = run_collect(&p, 1_000_000).unwrap();
        // The final chain load must read STREAM words again.
        let stream_reads = trace
            .iter()
            .filter(|t| {
                matches!(t.mem, MemEffect::Load { addr, .. }
                    if (STREAM_BASE..STREAM_BASE + 8 * 8).contains(&addr))
            })
            .count();
        assert_eq!(stream_reads, 2 * 8, "LD1 + the cycle-closing load");
    }

    #[test]
    fn lookup_count_controls_length() {
        let small = generate(HashParams {
            lookups: 64,
            ..Default::default()
        });
        let large = generate(HashParams {
            lookups: 128,
            ..Default::default()
        });
        let (t1, _) = run_collect(&small, 10_000_000).unwrap();
        let (t2, _) = run_collect(&large, 10_000_000).unwrap();
        assert!(t2.len() > t1.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(HashParams {
            seed: 11,
            ..Default::default()
        });
        let b = generate(HashParams {
            seed: 11,
            ..Default::default()
        });
        assert_eq!(a, b);
    }
}

//! Workload generators.
//!
//! Each generator builds a [`Program`](recon_isa::Program) (or a
//! multithreaded [`Workload`](crate::Workload)) whose *character* —
//! pointer-dereference rate, working-set size, branchiness, store rate,
//! reuse — is controlled by a parameter struct. The named SPEC/PARSEC
//! stand-ins in [`crate::spec2017`], [`crate::spec2006`], and
//! [`crate::parsec`] are tuned instances of these generators.
//!
//! ## Register conventions
//!
//! * `R1..R9` — scratch
//! * `R10..R15` — computed addresses
//! * `R20..R27` — loop counters / offsets / bases
//! * `R28..R30` — synchronization (parallel workloads)
//! * `R31` — thread id (seeded by the simulator)
//!
//! ## Memory layout
//!
//! Each generator draws from disjoint regions so workloads can be
//! composed; see the `*_BASE` constants.

pub mod branchy;
pub mod btree;
pub mod gadget;
pub mod hash;
pub mod list;
pub mod parallel;
pub mod stencil;
pub mod stream;

pub use recon_isa::rng::{Rng, SplitMix64};

/// Base address of branch-condition arrays.
pub const COND_BASE: u64 = 0x0010_0000;
/// Base address of pointer tables.
pub const PTR_BASE: u64 = 0x0100_0000;
/// Base address of dereference-target regions (one per chain level).
pub const TGT_BASE: u64 = 0x0200_0000;
/// Stride between dereference-target levels.
pub const TGT_LEVEL_STRIDE: u64 = 0x0100_0000;
/// Base address of streaming arrays.
pub const STREAM_BASE: u64 = 0x1000_0000;
/// Base address of node-based structures (lists, trees).
pub const NODE_BASE: u64 = 0x2000_0000;
/// Base address of synchronization words (barriers, flags).
pub const SYNC_BASE: u64 = 0x4000_0000;

/// Deterministic RNG for workload generation (in-tree splitmix64; no
/// external dependency, identical streams on every host).
#[must_use]
pub fn rng(seed: u64) -> SplitMix64 {
    SplitMix64::new(seed)
}

/// A pseudo-random permutation of `0..n` (Fisher-Yates).
#[must_use]
pub fn permutation(n: usize, rng: &mut SplitMix64) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        v.swap(i, rng.below_usize(i + 1));
    }
    v
}

/// Asserts `n` is a power of two and returns `n - 1` as a mask.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
#[must_use]
pub fn mask_of(n: u64) -> u64 {
    assert!(n.is_power_of_two(), "{n} must be a power of two");
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = rng(42);
        let p = permutation(64, &mut r);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn rng_is_deterministic() {
        let a = permutation(16, &mut rng(7));
        let b = permutation(16, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn mask_of_powers() {
        assert_eq!(mask_of(8), 7);
        assert_eq!(mask_of(1024), 1023);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn mask_of_rejects_non_powers() {
        let _ = mask_of(12);
    }
}

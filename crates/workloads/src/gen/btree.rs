//! Binary-search-tree descent generator — the `leela`/`astar` character:
//! pointer-linked nodes, data-dependent descent branches (hard to
//! predict), and moderate reuse concentrated near the root. ReCon
//! reveals the hot upper levels quickly; the cold leaves stay concealed.

use recon_isa::{reg::names::*, Asm, Program};

use super::{rng, Rng, NODE_BASE, STREAM_BASE};

/// Parameters of [`generate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BtreeParams {
    /// Tree height (node count = `2^height - 1`).
    pub height: u32,
    /// Number of searches.
    pub searches: u64,
    /// RNG seed (search keys).
    pub seed: u64,
}

impl Default for BtreeParams {
    fn default() -> Self {
        BtreeParams {
            height: 10,
            searches: 2048,
            seed: 5,
        }
    }
}

/// Node layout at `NODE_BASE + idx*64`: `[key, left_ptr, right_ptr]`
/// where `idx` follows heap order (children of `i` are `2i+1`, `2i+2`)
/// and keys are the in-order ranks, making the structure a valid BST.
///
/// Each search descends from the root comparing a streamed key:
///
/// ```text
/// n = root;
/// for level in 0..height {
///     k = n->key;               // pair with the hop that loaded n
///     if (key < k) n = n->left; // pair
///     else         n = n->right;
/// }
/// ```
#[must_use]
pub fn generate(p: BtreeParams) -> Program {
    assert!((1..=20).contains(&p.height), "height 1..=20");
    let nodes: u64 = (1 << p.height) - 1;
    let mut r = rng(p.seed);
    let mut a = Asm::new();

    let addr_of = |idx: u64| NODE_BASE + idx * 64;
    // In-order rank of heap index = its position in an in-order walk.
    fn fill(a: &mut Asm, idx: u64, lo: u64, hi: u64, nodes: u64) {
        if idx >= nodes {
            return;
        }
        let mid = (lo + hi) / 2;
        let node = NODE_BASE + idx * 64;
        let left = 2 * idx + 1;
        let right = 2 * idx + 2;
        a.data(node, mid); // key
        a.data(
            node + 8,
            if left < nodes {
                NODE_BASE + left * 64
            } else {
                node
            },
        );
        a.data(
            node + 16,
            if right < nodes {
                NODE_BASE + right * 64
            } else {
                node
            },
        );
        fill(a, left, lo, mid, nodes);
        fill(a, right, mid + 1, hi, nodes);
    }
    fill(&mut a, 0, 0, nodes, nodes);
    for i in 0..p.searches {
        a.data(STREAM_BASE + i * 8, r.below(nodes));
    }

    a.li(R26, STREAM_BASE).li(R5, 0);
    a.li(R22, 0)
        .li(R23, p.searches)
        .li(R24, u64::from(p.height));
    let top = a.here();
    a.add(R10, R26, R20);
    a.load(R2, R10, 0); // search key
    a.li(R1, addr_of(0)); // n = root
    a.li(R21, 0);
    let descend = a.here();
    a.load(R3, R1, 0); // k = n->key (pair with the hop)
    let go_right = a.new_label();
    let next = a.new_label();
    a.bgeu(R2, R3, go_right); // data-dependent: ~50/50
    a.load(R1, R1, 8); // n = n->left  (pair)
    a.jump(next);
    a.bind(go_right);
    a.load(R1, R1, 16); // n = n->right (pair)
    a.bind(next);
    a.addi(R21, R21, 1);
    a.bltu_to(R21, R24, descend);
    a.add(R5, R5, R3); // accumulate the last key seen
    a.addi(R20, R20, 8);
    a.addi(R22, R22, 1);
    a.bltu_to(R22, R23, top);
    a.halt();
    a.assemble().expect("btree generator emits valid programs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::run_collect;

    #[test]
    fn searches_terminate() {
        let p = generate(BtreeParams {
            height: 5,
            searches: 32,
            seed: 1,
        });
        let (trace, state) = run_collect(&p, 1_000_000).unwrap();
        assert!(state.halted);
        // Each search descends `height` levels: 2 loads per level + key.
        let loads = trace.iter().filter(|t| t.inst.is_load()).count();
        assert_eq!(loads, 32 * (1 + 5 * 2));
    }

    #[test]
    fn descent_branches_are_data_dependent() {
        let p = generate(BtreeParams {
            height: 6,
            searches: 64,
            seed: 2,
        });
        let (trace, _) = run_collect(&p, 1_000_000).unwrap();
        let takens: Vec<bool> = trace.iter().filter_map(|t| t.taken).collect();
        let taken_count = takens.iter().filter(|&&t| t).count();
        // Mixed outcomes (not all taken / not all not-taken).
        assert!(taken_count > takens.len() / 10);
        assert!(taken_count < takens.len() * 9 / 10);
    }

    #[test]
    #[should_panic(expected = "height")]
    fn rejects_zero_height() {
        let _ = generate(BtreeParams {
            height: 0,
            searches: 1,
            seed: 1,
        });
    }
}

//! Interleaved linked-list traversal generator — the `mcf`/`omnetpp`
//! character: several independent pointer rings chased round-robin
//! (giving the baseline its memory-level parallelism) over a node
//! working set that can exceed any cache level, with a cond-gated
//! payload dereference per visit.
//!
//! Every hop and payload access is a direct-dependence load pair, so
//! ReCon progressively reveals the node words — but with working sets
//! beyond the LLC, evictions wash reveals away (the Figure 10
//! capacity-sensitivity behaviour).

use recon_isa::{reg::names::*, ArchReg, Asm, Program};

use super::{mask_of, permutation, rng, COND_BASE, NODE_BASE, TGT_BASE};

/// Parameters of [`generate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ListParams {
    /// Number of nodes, split evenly among the chains (each node is one
    /// 64-byte line).
    pub nodes: u64,
    /// Independent rings chased round-robin (1..=8).
    pub chains: u64,
    /// Visits per chain.
    pub visits: u64,
    /// Branch-condition lines (power of two): the speculation-window
    /// knob.
    pub cond_lines: u64,
    /// Payload values table size.
    pub payload_slots: u64,
    /// RNG seed (node order permutation).
    pub seed: u64,
}

impl Default for ListParams {
    fn default() -> Self {
        ListParams {
            nodes: 1024,
            chains: 8,
            visits: 512,
            cond_lines: 256,
            payload_slots: 256,
            seed: 2,
        }
    }
}

/// Node layout at `NODE_BASE + slot*64`: `[next_ptr, payload_ptr]`.
///
/// Each loop iteration visits one node of each chain:
///
/// ```text
/// if (conds[ci]) {                 // gate: cond-latency knob
///     v = *(n->payload);           // payload deref (two pairs)
///     sum += v;
/// }
/// n = n->next;                     // hop (pair)
/// ```
#[must_use]
pub fn generate(p: ListParams) -> Program {
    assert!((1..=8).contains(&p.chains), "1..=8 chains supported");
    assert!(p.nodes >= p.chains, "need at least one node per chain");
    let mut r = rng(p.seed);
    let mut a = Asm::new();

    // Random placement of nodes in memory.
    let order = permutation(p.nodes as usize, &mut r);
    let addr_of = |slot: usize| NODE_BASE + order[slot] as u64 * 64;
    let per_chain = (p.nodes / p.chains) as usize;
    let mut heads = Vec::new();
    for c in 0..p.chains as usize {
        let first = c * per_chain;
        let last = first + per_chain - 1;
        heads.push(addr_of(first));
        for slot in first..=last {
            let next = if slot == last {
                addr_of(first)
            } else {
                addr_of(slot + 1)
            };
            let payload = TGT_BASE + (slot as u64 % p.payload_slots) * 8;
            a.data(addr_of(slot), next);
            a.data(addr_of(slot) + 8, payload);
        }
    }
    for i in 0..p.payload_slots {
        a.data(TGT_BASE + i * 8, i + 7);
    }
    for l in 0..p.cond_lines {
        a.data(COND_BASE + l * 64, 1);
    }

    let cmask = mask_of(p.cond_lines * 64);
    a.li(R26, COND_BASE)
        .li(R5, 0)
        .li(R20, 0)
        .li(R22, 0)
        .li(R23, p.visits);
    for (c, &head) in heads.iter().enumerate() {
        a.li(ArchReg::new(12 + c), head);
    }
    let top = a.here();
    for c in 0..p.chains as usize {
        // Chain registers live in R12..R19; R9..R11 are scratch.
        let n = ArchReg::new(12 + c);
        a.add(R10, R26, R20);
        a.load(R9, R10, 0); // cond
        let skip = a.new_label();
        a.beq(R9, R0, skip);
        a.load(R10, n, 8); // payload pointer (pair with the last hop)
        a.load(R11, R10, 0); // payload value (pair)
        a.add(R5, R5, R11);
        a.bind(skip);
        a.load(n, n, 0); // hop (pair)
        a.addi(R20, R20, 64).andi(R20, R20, cmask);
    }
    a.addi(R22, R22, 1);
    a.bltu_to(R22, R23, top);
    a.halt();
    a.assemble().expect("list generator emits valid programs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::run_collect;

    fn small() -> ListParams {
        ListParams {
            nodes: 64,
            chains: 4,
            visits: 32,
            cond_lines: 4,
            payload_slots: 8,
            seed: 3,
        }
    }

    #[test]
    fn traverses_and_accumulates() {
        let p = generate(small());
        let (trace, state) = run_collect(&p, 1_000_000).unwrap();
        assert!(state.halted);
        // Per iteration: chains * (cond + payload ptr + payload + hop).
        let loads = trace.iter().filter(|t| t.inst.is_load()).count();
        assert_eq!(loads, 32 * 4 * 4);
        // All conds taken: every visit accumulates >= 7.
        assert!(state.read(R5) >= 32 * 4 * 7);
    }

    #[test]
    fn rings_are_closed() {
        // Visiting more times than the ring length must wrap, not fault.
        let p = generate(ListParams {
            visits: 100,
            ..small()
        });
        let (_, state) = run_collect(&p, 10_000_000).unwrap();
        assert!(state.halted);
    }

    #[test]
    fn chains_partition_the_nodes() {
        let prm = small();
        let p = generate(prm);
        // Count distinct node lines in the image.
        let node_words = p
            .image
            .iter()
            .filter(|&(a, _)| (NODE_BASE..NODE_BASE + prm.nodes * 64).contains(&a))
            .count();
        assert_eq!(node_words as u64, prm.nodes * 2, "next + payload per node");
    }

    #[test]
    #[should_panic(expected = "chains")]
    fn rejects_too_many_chains() {
        let _ = generate(ListParams {
            chains: 9,
            ..small()
        });
    }
}

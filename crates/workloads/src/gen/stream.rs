//! Streaming generator: sequential array traversal with optional
//! stores — the `lbm`/`bwaves`/`imagick` character. No pointer
//! dereferences, predictable branches: secure speculation schemes lose
//! almost nothing here and ReCon has nothing to recover (the paper's
//! "no room to boost" benchmarks).

use recon_isa::{reg::names::*, Asm, Program};

use super::STREAM_BASE;

/// Parameters of [`generate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StreamParams {
    /// Array elements (8-byte words).
    pub elements: u64,
    /// Passes over the array.
    pub passes: u64,
    /// Write back `a[i] = a[i] + c` instead of only summing.
    pub writes: bool,
    /// Element stride in words (1 = dense, 8 = one per line).
    pub stride_words: u64,
}

impl Default for StreamParams {
    fn default() -> Self {
        StreamParams {
            elements: 4096,
            passes: 2,
            writes: false,
            stride_words: 1,
        }
    }
}

/// Builds the streaming program.
#[must_use]
pub fn generate(p: StreamParams) -> Program {
    let mut a = Asm::new();
    for i in 0..p.elements {
        a.data(STREAM_BASE + i * 8 * p.stride_words, i + 1);
    }
    a.li(R5, 0).li(R22, 0).li(R23, p.passes);
    let pass = a.here();
    a.li(R10, STREAM_BASE).li(R20, 0).li(R21, p.elements);
    let top = a.here();
    a.load(R2, R10, 0);
    a.add(R5, R5, R2);
    if p.writes {
        a.addi(R2, R2, 1);
        a.store(R2, R10, 0);
    }
    a.addi(R10, R10, 8 * p.stride_words);
    a.addi(R20, R20, 1);
    a.bltu_to(R20, R21, top);
    a.addi(R22, R22, 1);
    a.bltu_to(R22, R23, pass);
    a.halt();
    a.assemble().expect("stream generator emits valid programs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::run_collect;

    #[test]
    fn sums_the_array() {
        let p = generate(StreamParams {
            elements: 16,
            passes: 1,
            ..Default::default()
        });
        let (_, state) = run_collect(&p, 100_000).unwrap();
        assert!(state.halted);
        assert_eq!(state.read(R5), (1..=16).sum::<u64>());
    }

    #[test]
    fn writes_mutate_for_next_pass() {
        let p = generate(StreamParams {
            elements: 4,
            passes: 2,
            writes: true,
            stride_words: 1,
        });
        let (_, state) = run_collect(&p, 100_000).unwrap();
        // Pass 1 sums 1..=4 (10) and increments; pass 2 sums 2..=5 (14).
        assert_eq!(state.read(R5), 24);
    }

    #[test]
    fn contains_no_dependent_load_pairs() {
        let p = generate(StreamParams::default());
        for w in p.code.windows(2) {
            if let (recon_isa::Inst::Load { dst, .. }, recon_isa::Inst::Load { base, .. }) =
                (&w[0], &w[1])
            {
                assert_ne!(dst, base);
            }
        }
    }
}

//! Workload and benchmark descriptors.

use recon_isa::{ArchReg, Program};

/// Which benchmark suite a stand-in belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Suite {
    /// SPEC CPU2017 speed stand-ins (single-thread).
    Spec2017,
    /// SPEC CPU2006 stand-ins (single-thread).
    Spec2006,
    /// PARSEC stand-ins (4-thread shared-memory).
    Parsec,
    /// Real programs assembled from the embedded `recon-asm` corpus.
    Corpus,
}

impl core::fmt::Display for Suite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Suite::Spec2017 => "SPEC2017",
            Suite::Spec2006 => "SPEC2006",
            Suite::Parsec => "PARSEC",
            Suite::Corpus => "CORPUS",
        };
        f.write_str(s)
    }
}

/// A runnable workload: one program plus per-thread entry points and
/// initial register seeds.
///
/// Single-thread workloads have one thread whose entry is the program
/// entry. Multithreaded workloads share the code and memory image; each
/// thread starts at its own entry with its own seeds (e.g. a thread id).
#[derive(Clone, Debug)]
pub struct Workload {
    /// The shared program (code + initial memory image).
    pub program: Program,
    /// Per-thread `(entry pc, register seeds)`.
    pub threads: Vec<ThreadSpec>,
}

/// One hardware thread's starting state.
#[derive(Clone, Debug, Default)]
pub struct ThreadSpec {
    /// Entry instruction index.
    pub entry: usize,
    /// Initial architectural register values.
    pub seeds: Vec<(ArchReg, u64)>,
}

impl Workload {
    /// A single-thread workload starting at the program entry.
    #[must_use]
    pub fn single(program: Program) -> Self {
        let entry = program.entry;
        Workload {
            program,
            threads: vec![ThreadSpec {
                entry,
                seeds: Vec::new(),
            }],
        }
    }

    /// Number of hardware threads required.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }
}

/// A named benchmark stand-in.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Name of the benchmark this stands in for (e.g. `"mcf"`).
    pub name: &'static str,
    /// Its suite.
    pub suite: Suite,
    /// The workload to run.
    pub workload: Workload,
}

impl Benchmark {
    /// Creates a single-thread benchmark.
    #[must_use]
    pub fn single(name: &'static str, suite: Suite, program: Program) -> Self {
        Benchmark {
            name,
            suite,
            workload: Workload::single(program),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_isa::Asm;

    #[test]
    fn single_workload_has_one_thread() {
        let mut a = Asm::new();
        a.halt();
        let w = Workload::single(a.assemble().unwrap());
        assert_eq!(w.num_threads(), 1);
        assert_eq!(w.threads[0].entry, 0);
    }

    #[test]
    fn suite_display() {
        assert_eq!(Suite::Spec2017.to_string(), "SPEC2017");
        assert_eq!(Suite::Parsec.to_string(), "PARSEC");
    }
}

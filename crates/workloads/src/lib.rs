//! # recon-workloads
//!
//! Synthetic stand-ins for the SPEC CPU2017 (speed), SPEC CPU2006, and
//! PARSEC benchmarks used by the ReCon evaluation, written in the
//! `recon-isa` mini-ISA and generated deterministically.
//!
//! The paper's results hinge on workload *character*, not on the exact
//! binaries: how often pointers are dereferenced (direct load pairs),
//! how often the same pointers are reused, how large the working set is,
//! and how branchy the code is. Each generator exposes those knobs and
//! the named suites instantiate them per benchmark (see `DESIGN.md`).
//!
//! ```
//! use recon_workloads::{spec2017, Scale, Suite};
//!
//! let suite = spec2017(Scale::Quick);
//! assert_eq!(suite.len(), 20);
//! let mcf = suite.iter().find(|b| b.name == "mcf").unwrap();
//! assert_eq!(mcf.suite, Suite::Spec2017);
//! assert!(mcf.workload.program.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gen;
pub mod suites;
pub mod workload;

pub use suites::{
    all_single_thread, corpus, find, parsec, spec2006, spec2017, Scale, FIG9_BENCHMARKS,
};
pub use workload::{Benchmark, Suite, ThreadSpec, Workload};

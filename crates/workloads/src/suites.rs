//! Named SPEC2017 / SPEC2006 / PARSEC stand-in benchmarks.
//!
//! Each entry names the benchmark it stands in for and instantiates a
//! generator with parameters chosen to mimic that benchmark's *character*
//! relevant to the ReCon evaluation: pointer-dereference rate, pointer
//! reuse, working-set size, branchiness, and store rate. See DESIGN.md
//! for the substitution rationale (absolute IPC is not preserved; the
//! relative behaviour under NDA/STT/ReCon is).
//!
//! The knobs that map to the paper's observations:
//!
//! * pointer-heavy + reusing (`xalancbmk`, `mcf`, `omnetpp`, `gcc`) —
//!   large STT/NDA losses, large ReCon recovery;
//! * streaming (`lbm`, `bwaves`, `imagick`) — no loss, nothing to recover;
//! * indirect-address (`cactuBSSN`, `deepsjeng`, `soplex`) — losses whose
//!   leakage is *not* direct load pairs: ReCon recovers little
//!   (Figure 9's low-ratio points);
//! * working sets larger than L1/L2 (`mcf`, `omnetpp`) — need reveal
//!   masks at L2/LLC to benefit (Figure 10).

use crate::gen::branchy::{self, BranchyParams};
use crate::gen::btree::{self, BtreeParams};
use crate::gen::gadget::{self, GadgetParams};
use crate::gen::hash::{self, HashParams};
use crate::gen::list::{self, ListParams};
use crate::gen::parallel::{self, ParKind, ParallelParams};
use crate::gen::stencil::{self, StencilParams};
use crate::gen::stream::{self, StreamParams};
#[cfg(test)]
use crate::workload::Workload;
use crate::workload::{Benchmark, Suite, ThreadSpec};

/// Workload sizing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scale {
    /// Short runs for tests and quick sweeps (tens of thousands of
    /// dynamic instructions).
    #[default]
    Quick,
    /// Longer runs for the figure harnesses (hundreds of thousands).
    Paper,
}

impl Scale {
    /// Multiplier applied to pass/iteration counts.
    #[must_use]
    pub fn factor(self) -> u64 {
        match self {
            Scale::Quick => 1,
            Scale::Paper => 4,
        }
    }

    /// Reads the scale from the `RECON_SCALE` environment variable
    /// (`paper` for ×4 runs; anything else is [`Scale::Quick`]). The
    /// single source of truth for every harness and the CLI.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("RECON_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") => Scale::Paper,
            _ => Scale::Quick,
        }
    }
}

fn gadget_bench(
    name: &'static str,
    suite: Suite,
    scale: Scale,
    slots: u64,
    cond_lines: u64,
    passes: u64,
    extra: impl FnOnce(&mut GadgetParams),
) -> Benchmark {
    let mut p = GadgetParams {
        slots,
        cond_lines,
        passes: passes * scale.factor(),
        seed: fxhash(name),
        ..GadgetParams::default()
    };
    extra(&mut p);
    Benchmark::single(name, suite, gadget::generate(p))
}

/// Cheap deterministic per-name seed.
fn fxhash(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// The SPEC CPU2017 speed stand-ins (Figure 5/6 upper rows).
#[must_use]
pub fn spec2017(scale: Scale) -> Vec<Benchmark> {
    let f = scale.factor();
    let s = Suite::Spec2017;
    vec![
        Benchmark::single(
            "bwaves",
            s,
            stream::generate(StreamParams {
                elements: 8192,
                passes: 2 * f,
                ..Default::default()
            }),
        ),
        gadget_bench("cactuBSSN", s, scale, 1024, 16384, 4, |p| {
            p.indirect_per_16 = 16;
            p.tgt_stride = 64;
        }),
        gadget_bench("deepsjeng", s, scale, 2048, 16384, 2, |p| {
            p.indirect_per_16 = 16;
            p.taken_per_256 = 224;
            p.tgt_stride = 64;
        }),
        Benchmark::single(
            "exchange2",
            s,
            branchy::generate(BranchyParams {
                values: 512,
                iterations: 6000 * f,
                seed: fxhash("exchange2"),
            }),
        ),
        Benchmark::single(
            "fotonik3d",
            s,
            stream::generate(StreamParams {
                elements: 8192,
                passes: 2 * f,
                ..Default::default()
            }),
        ),
        gadget_bench("gcc", s, scale, 1024, 16384, 6, |p| {
            p.indirect_per_16 = 4;
            p.stores_per_16 = 1;
            p.cyclic = true;
        }),
        Benchmark::single(
            "imagick",
            s,
            stream::generate(StreamParams {
                elements: 4096,
                passes: 3 * f,
                writes: true,
                ..Default::default()
            }),
        ),
        Benchmark::single(
            "lbm",
            s,
            stream::generate(StreamParams {
                elements: 8192,
                passes: 2 * f,
                writes: true,
                ..Default::default()
            }),
        ),
        Benchmark::single(
            "leela",
            s,
            btree::generate(BtreeParams {
                height: 7,
                searches: 1500 * f,
                seed: fxhash("leela"),
            }),
        ),
        Benchmark::single(
            "mcf",
            s,
            list::generate(ListParams {
                nodes: 2048, // 128 KiB of nodes: beyond L2, fits the LLC
                chains: 8,
                visits: 1024 * f, // 4 traversals of each 256-node ring
                cond_lines: 16384,
                payload_slots: 512,
                seed: fxhash("mcf"),
            }),
        ),
        Benchmark::single(
            "nab",
            s,
            stencil::generate(StencilParams {
                points: 6144,
                sweeps: 2 * f,
            }),
        ),
        gadget_bench("omnetpp", s, scale, 1024, 16384, 4, |p| {
            p.depth = 2;
            p.indirect_per_16 = 2;
            p.cyclic = true;
        }),
        Benchmark::single(
            "perlbench",
            s,
            hash::generate(HashParams {
                buckets: 1024,
                lookups: 6144 * f,
                keys: 2048,
                cond_lines: 8192,
                seed: fxhash("perlbench"),
            }),
        ),
        Benchmark::single(
            "pop2",
            s,
            stencil::generate(StencilParams {
                points: 8192,
                sweeps: 2 * f,
            }),
        ),
        Benchmark::single(
            "roms",
            s,
            stream::generate(StreamParams {
                elements: 6144,
                passes: 2 * f,
                ..Default::default()
            }),
        ),
        Benchmark::single(
            "wrf",
            s,
            stencil::generate(StencilParams {
                points: 4096,
                sweeps: 3 * f,
            }),
        ),
        Benchmark::single(
            "x264",
            s,
            stream::generate(StreamParams {
                elements: 4096,
                passes: 3 * f,
                writes: true,
                stride_words: 2,
            }),
        ),
        Benchmark::single(
            "xalancbmk",
            s,
            hash::generate(HashParams {
                buckets: 512,
                lookups: 6144 * f,
                keys: 1024,
                cond_lines: 16384,
                seed: fxhash("xalancbmk"),
            }),
        ),
        gadget_bench("xz", s, scale, 512, 16384, 8, |p| {
            p.stores_per_16 = 2;
            p.indirect_per_16 = 4;
            p.cyclic = true;
        }),
        Benchmark::single(
            "cam4",
            s,
            stencil::generate(StencilParams {
                points: 6144,
                sweeps: 2 * f,
            }),
        ),
    ]
}

/// The SPEC CPU2006 stand-ins (Figure 5/6 lower rows).
#[must_use]
pub fn spec2006(scale: Scale) -> Vec<Benchmark> {
    let f = scale.factor();
    let s = Suite::Spec2006;
    vec![
        Benchmark::single(
            "astar",
            s,
            btree::generate(BtreeParams {
                height: 9,
                searches: 1200 * f,
                seed: fxhash("astar"),
            }),
        ),
        Benchmark::single(
            "bzip2",
            s,
            branchy::generate(BranchyParams {
                values: 2048,
                iterations: 6000 * f,
                seed: fxhash("bzip2"),
            }),
        ),
        gadget_bench("gcc", s, scale, 1024, 16384, 5, |p| {
            p.indirect_per_16 = 4;
            p.stores_per_16 = 1;
            p.cyclic = true;
        }),
        Benchmark::single(
            "gobmk",
            s,
            branchy::generate(BranchyParams {
                values: 1024,
                iterations: 6000 * f,
                seed: fxhash("gobmk"),
            }),
        ),
        Benchmark::single(
            "h264ref",
            s,
            stream::generate(StreamParams {
                elements: 4096,
                passes: 3 * f,
                writes: true,
                ..Default::default()
            }),
        ),
        Benchmark::single(
            "hmmer",
            s,
            stream::generate(StreamParams {
                elements: 6144,
                passes: 3 * f,
                ..Default::default()
            }),
        ),
        Benchmark::single(
            "lbm",
            s,
            stream::generate(StreamParams {
                elements: 8192,
                passes: 2 * f,
                writes: true,
                ..Default::default()
            }),
        ),
        Benchmark::single(
            "libquantum",
            s,
            stream::generate(StreamParams {
                elements: 8192,
                passes: 2 * f,
                ..Default::default()
            }),
        ),
        Benchmark::single(
            "mcf",
            s,
            list::generate(ListParams {
                nodes: 2048,
                chains: 8,
                visits: 1024 * f,
                cond_lines: 16384,
                payload_slots: 512,
                seed: fxhash("mcf06"),
            }),
        ),
        Benchmark::single(
            "milc",
            s,
            stencil::generate(StencilParams {
                points: 8192,
                sweeps: 2 * f,
            }),
        ),
        Benchmark::single(
            "namd",
            s,
            stencil::generate(StencilParams {
                points: 4096,
                sweeps: 3 * f,
            }),
        ),
        gadget_bench("omnetpp", s, scale, 1024, 16384, 4, |p| {
            p.depth = 2;
            p.indirect_per_16 = 2;
            p.cyclic = true;
        }),
        Benchmark::single(
            "perlbench",
            s,
            hash::generate(HashParams {
                buckets: 1024,
                lookups: 6144 * f,
                keys: 2048,
                cond_lines: 8192,
                seed: fxhash("perlbench06"),
            }),
        ),
        Benchmark::single(
            "sjeng",
            s,
            branchy::generate(BranchyParams {
                values: 1024,
                iterations: 6000 * f,
                seed: fxhash("sjeng"),
            }),
        ),
        gadget_bench("soplex", s, scale, 1024, 8192, 4, |p| {
            p.indirect_per_16 = 12;
            p.tgt_stride = 64;
        }),
        Benchmark::single(
            "sphinx3",
            s,
            hash::generate(HashParams {
                buckets: 512,
                lookups: 4096 * f,
                keys: 2048,
                cond_lines: 4096,
                seed: fxhash("sphinx3"),
            }),
        ),
        Benchmark::single(
            "xalancbmk",
            s,
            hash::generate(HashParams {
                buckets: 512,
                lookups: 6144 * f,
                keys: 1024,
                cond_lines: 16384,
                seed: fxhash("xalancbmk06"),
            }),
        ),
    ]
}

/// The PARSEC stand-ins (Figure 8), all 4-thread.
#[must_use]
pub fn parsec(scale: Scale) -> Vec<Benchmark> {
    let f = scale.factor();
    let mk = |name: &'static str, kind: ParKind, slots: u64, cond_lines: u64, passes: u64| {
        let workload = parallel::generate(ParallelParams {
            kind,
            slots,
            cond_lines,
            passes: passes * f,
            seed: fxhash(name),
        });
        Benchmark {
            name,
            suite: Suite::Parsec,
            workload,
        }
    };
    vec![
        mk(
            "blackscholes",
            ParKind::DataParallel { rotate: false },
            1024,
            16384,
            4,
        ),
        mk(
            "bodytrack",
            ParKind::DataParallel { rotate: true },
            1024,
            16384,
            4,
        ),
        mk("canneal", ParKind::SharedChase, 2048, 16384, 3),
        mk("dedup", ParKind::ProducerConsumer, 512, 16384, 4),
        mk("ferret", ParKind::ProducerConsumer, 1024, 16384, 3),
        mk(
            "fluidanimate",
            ParKind::DataParallel { rotate: true },
            512,
            8192,
            5,
        ),
        mk("streamcluster", ParKind::SharedChase, 1024, 16384, 4),
        mk(
            "swaptions",
            ParKind::DataParallel { rotate: false },
            512,
            8192,
            5,
        ),
    ]
}

/// Real programs assembled from the embedded `recon-asm` corpus.
///
/// Unlike the synthetic stand-ins, these are actual algorithms
/// (quicksort, matrix multiply, a QOI-style decoder, a box blur, and a
/// pointer chase) written in assembly text with self-checking
/// epilogues: each run writes a result digest and pass/fail status to
/// known addresses, so every harness can verify the machine computed
/// the right answer under every scheme. The pass count in
/// [`recon_asm::corpus::PASS_REG`] is overridden with the scale
/// factor; digests are pass-count invariant by construction.
#[must_use]
pub fn corpus(scale: Scale) -> Vec<Benchmark> {
    recon_asm::corpus::CORPUS
        .iter()
        .map(|e| {
            let p = e.assemble();
            let threads = p
                .entries
                .iter()
                .map(|spec| {
                    let mut seeds: Vec<_> = spec
                        .seeds
                        .iter()
                        .copied()
                        .filter(|&(r, _)| r != recon_asm::corpus::PASS_REG)
                        .collect();
                    seeds.push((recon_asm::corpus::PASS_REG, scale.factor()));
                    ThreadSpec {
                        entry: spec.entry,
                        seeds,
                    }
                })
                .collect();
            Benchmark {
                name: e.name,
                suite: Suite::Corpus,
                workload: crate::workload::Workload {
                    program: p.program,
                    threads,
                },
            }
        })
        .collect()
}

/// Convenience: every single-thread benchmark of both SPEC suites.
#[must_use]
pub fn all_single_thread(scale: Scale) -> Vec<Benchmark> {
    let mut v = spec2017(scale);
    v.extend(spec2006(scale));
    v
}

/// Looks up a benchmark by suite and name.
#[must_use]
pub fn find(suite: Suite, name: &str, scale: Scale) -> Option<Benchmark> {
    let list: Vec<Benchmark> = match suite {
        Suite::Spec2017 => spec2017(scale),
        Suite::Spec2006 => spec2006(scale),
        Suite::Parsec => parsec(scale),
        Suite::Corpus => corpus(scale),
    };
    list.into_iter().find(|b| b.name == name)
}

/// The benchmarks the paper analyzes in Figure 9 (SPEC2017 entries with
/// more than 5% STT degradation).
pub const FIG9_BENCHMARKS: [&str; 7] = [
    "cactuBSSN",
    "deepsjeng",
    "mcf",
    "leela",
    "omnetpp",
    "perlbench",
    "xalancbmk",
];

/// Validates a workload terminates in the functional model within a
/// budget (used in tests).
#[cfg(test)]
fn terminates(w: &Workload, budget: usize) -> bool {
    if w.num_threads() != 1 {
        return true; // multithreaded: validated in recon-sim tests
    }
    recon_isa::run_collect(&w.program, budget)
        .map(|(_, st)| st.halted)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec2017_has_twenty_benchmarks() {
        assert_eq!(spec2017(Scale::Quick).len(), 20);
    }

    #[test]
    fn spec2006_has_seventeen_benchmarks() {
        assert_eq!(spec2006(Scale::Quick).len(), 17);
    }

    #[test]
    fn parsec_has_eight_four_thread_benchmarks() {
        let p = parsec(Scale::Quick);
        assert_eq!(p.len(), 8);
        assert!(p.iter().all(|b| b.workload.num_threads() == 4));
    }

    #[test]
    fn every_single_thread_benchmark_terminates() {
        for b in all_single_thread(Scale::Quick) {
            assert!(
                terminates(&b.workload, 30_000_000),
                "{} ({}) must halt",
                b.name,
                b.suite
            );
        }
    }

    #[test]
    fn corpus_has_five_scaled_benchmarks() {
        for scale in [Scale::Quick, Scale::Paper] {
            let c = corpus(scale);
            assert_eq!(c.len(), 5);
            for b in &c {
                assert_eq!(b.suite, Suite::Corpus);
                assert_eq!(b.workload.num_threads(), 1);
                let seeds = &b.workload.threads[0].seeds;
                assert_eq!(
                    seeds
                        .iter()
                        .find(|&&(r, _)| r == recon_asm::corpus::PASS_REG)
                        .map(|&(_, v)| v),
                    Some(scale.factor()),
                    "{} pass seed",
                    b.name
                );
            }
        }
    }

    #[test]
    fn find_locates_benchmarks() {
        assert!(find(Suite::Spec2017, "mcf", Scale::Quick).is_some());
        assert!(find(Suite::Corpus, "quicksort", Scale::Quick).is_some());
        assert!(find(Suite::Spec2006, "sphinx3", Scale::Quick).is_some());
        assert!(find(Suite::Parsec, "canneal", Scale::Quick).is_some());
        assert!(find(Suite::Spec2017, "nonexistent", Scale::Quick).is_none());
    }

    #[test]
    fn fig9_benchmarks_exist_in_spec2017() {
        for name in FIG9_BENCHMARKS {
            assert!(
                find(Suite::Spec2017, name, Scale::Quick).is_some(),
                "{name}"
            );
        }
    }

    #[test]
    fn scales_differ() {
        let q = find(Suite::Spec2017, "bwaves", Scale::Quick).unwrap();
        let p = find(Suite::Spec2017, "bwaves", Scale::Paper).unwrap();
        let (tq, _) = recon_isa::run_collect(&q.workload.program, 50_000_000).unwrap();
        let (tp, _) = recon_isa::run_collect(&p.workload.program, 50_000_000).unwrap();
        assert!(tp.len() > 2 * tq.len());
    }

    #[test]
    fn names_seed_differently() {
        assert_ne!(fxhash("mcf"), fxhash("gcc"));
    }
}
